"""Cost-model protocol: registry, flow atoms, engine plumbing, fhe model."""

import json

import pytest

from repro.circuits import control as C
from repro.engine import EngineConfig, run_batch
from repro.engine.cli import build_parser, config_from_args, main
from repro.engine.core import resolved_flow, run_circuit, select_cases
from repro.rewriting import (CostModel, FheNoiseBudgetCost, McCost,
                             RewriteParams, cost_model, flow_script,
                             optimize, parse_flow, register_cost_model,
                             registered_cost_models, standard_flow,
                             unregister_cost_model)
from repro.testing.diff import cost_model_flow
from repro.xag import equivalent, multiplicative_depth


class _AndWeightedCost(CostModel):
    """Minimal custom model for registry/flow tests (mc with a scaled metric)."""

    name = "weighted"
    description = "ANDs times a weight"
    metric_name = "wands"

    def __init__(self, weight=3, name=None):
        self.weight = weight
        if name is not None:
            self.name = name

    def skip_zero_saving(self, allow_zero_gain):
        return not allow_zero_gain

    def key(self, candidate):
        return (candidate.gain_ands, candidate.gain_gates)

    def acceptable(self, candidate, allow_zero_gain):
        return candidate.gain_ands > 0

    def made_progress(self, stats):
        return stats.ands_after < stats.ands_before

    def metric(self, ands, xors, depth):
        return self.weight * ands


@pytest.fixture
def weighted_model():
    model = register_cost_model(_AndWeightedCost())
    yield model
    unregister_cost_model(model.name)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_builtins_are_registered():
    models = registered_cost_models()
    assert set(models) >= {"mc", "size", "mc-depth", "fhe"}
    for name, model in models.items():
        assert model.name == name
        assert cost_model(name) is model  # singletons


def test_cost_model_resolves_instances_passthrough():
    model = FheNoiseBudgetCost(depth_weight=4)
    assert cost_model(model) is model


def test_cost_model_unknown_name_lists_registry():
    with pytest.raises(ValueError, match="unknown cost model 'fast'") as info:
        cost_model("fast")
    assert "mc-depth" in str(info.value)


def test_register_rejects_duplicate(weighted_model):
    with pytest.raises(ValueError, match="already registered"):
        register_cost_model(_AndWeightedCost())


def test_register_rejects_reserved_and_bad_names():
    for bad in ("guard", "repeat", "balance", "sweep", "baseline"):
        with pytest.raises(ValueError, match="reserved"):
            register_cost_model(_AndWeightedCost(name=bad))
    for bad in ("", "Mc", "9lives", "has space", "dot.dot"):
        with pytest.raises(ValueError, match="not a valid flow atom"):
            register_cost_model(_AndWeightedCost(name=bad))


def test_cost_models_compare_by_value():
    # dataclasses.astuple deep-copies params into the pipeline's
    # rewriter-cache key; value equality keeps rewriter sharing alive.
    assert FheNoiseBudgetCost() == FheNoiseBudgetCost()
    assert FheNoiseBudgetCost(depth_weight=4) != FheNoiseBudgetCost()
    assert McCost() != FheNoiseBudgetCost()
    assert hash(FheNoiseBudgetCost()) == hash(FheNoiseBudgetCost())


# ----------------------------------------------------------------------
# flow atoms (satellite: parse_flow rejects unknown atoms descriptively)
# ----------------------------------------------------------------------
def test_parse_flow_accepts_registered_atoms():
    passes = parse_flow("fhe,fhe*,fhe*3")
    assert [p.objective for p in passes] == ["fhe", "fhe", "fhe"]
    assert [p.max_rounds for p in passes] == [1, None, 3]


def test_parse_flow_accepts_custom_registered_atom(weighted_model):
    passes = parse_flow("weighted*")
    assert passes[0].objective == "weighted"


def test_parse_flow_rejects_unknown_atom_listing_atoms_and_models():
    with pytest.raises(ValueError) as info:
        parse_flow("mc,area*")
    message = str(info.value)
    assert message.startswith("flow script:")
    assert "unknown step 'area'" in message
    # the error must teach both vocabularies: structural atoms and models
    for atom in ("sweep", "balance", "baseline"):
        assert atom in message
    for model in ("mc", "size", "mc-depth", "fhe"):
        assert model in message


def test_engine_exits_2_on_unknown_flow_atom(capsys):
    assert main(["--circuits", "decoder", "--flow", "mc,area*"]) == 2
    err = capsys.readouterr().err
    assert "unknown step 'area'" in err and "fhe" in err


def test_flow_script_round_trips():
    for script in ("mc,mc*", "balance,guard(mc*),mc-depth*",
                   "repeat:8(balance,guard(mc*2),fhe*)",
                   "baseline,sweep,size*3"):
        assert flow_script(parse_flow(script)) == script


def test_standard_flow_serialises_for_every_model():
    for name in registered_cost_models():
        script = flow_script(standard_flow(name))
        assert flow_script(parse_flow(script)) == script


# ----------------------------------------------------------------------
# engine plumbing: --cost alias, resolved flow, cost fields
# ----------------------------------------------------------------------
def test_cli_cost_and_objective_are_one_argument():
    by_cost = config_from_args(build_parser().parse_args(["--cost", "fhe"]))
    by_objective = config_from_args(
        build_parser().parse_args(["--objective", "fhe"]))
    assert by_cost.objective == by_objective.objective == "fhe"


def test_cli_rejects_unknown_cost(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--cost", "fast"])
    assert excinfo.value.code == 2


def test_resolved_flow_serialises_canonical_pipeline():
    # no --flow: the canonical pipeline is reported, never null; the
    # engine's round cap shows up in the script (cap 2 = one-round plus a
    # single convergence round)
    assert resolved_flow(EngineConfig(objective="mc",
                                      max_rounds=None)) == "mc,mc*"
    assert resolved_flow(EngineConfig(objective="mc")) == "mc,mc"
    depth_script = resolved_flow(EngineConfig(objective="mc-depth",
                                              max_rounds=None))
    assert "guard(" in depth_script and "mc-depth*" in depth_script
    # a custom flow wins verbatim
    assert resolved_flow(EngineConfig(flow="balance,mc*")) == "balance,mc*"


def test_json_payload_reports_resolved_flow_and_cost(tmp_path):
    """Regression: the payload said objective="mc" and flow=null even when a
    custom --flow drove the run — it must name what actually executed."""
    custom = tmp_path / "custom.json"
    assert main(["--circuits", "decoder", "--rounds", "1",
                 "--flow", "balance,mc*", "--json", str(custom)]) == 0
    payload = json.loads(custom.read_text())
    assert payload["config"]["flow"] == "balance,mc*"
    assert payload["config"]["cost"] == "mc"
    assert payload["config"]["objective"] == "mc"  # legacy key survives

    legacy = tmp_path / "legacy.json"
    assert main(["--circuits", "decoder", "--rounds", "0",
                 "--json", str(legacy)]) == 0
    payload = json.loads(legacy.read_text())
    assert payload["config"]["flow"] == "mc,mc*"  # resolved, not null
    circuit = payload["circuits"][0]
    assert circuit["cost_model"] == "mc"
    assert circuit["cost_after"] <= circuit["cost_before"]
    assert circuit["within_budget"] is None


def test_engine_fhe_end_to_end(tmp_path, capsys):
    json_path = tmp_path / "fhe.json"
    exit_code = main(["--circuits", "router", "--rounds", "2",
                      "--cost", "fhe", "--json", str(json_path)])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "[fhe]" in out
    assert "noise" in out  # the model's metric column
    payload = json.loads(json_path.read_text())
    assert payload["config"]["cost"] == "fhe"
    circuit = payload["circuits"][0]
    assert circuit["cost_model"] == "fhe"
    assert circuit["verified"] is True
    assert circuit["mult_depth_after"] <= circuit["mult_depth_before"]
    assert circuit["ands_after"] <= circuit["ands_before"]
    assert circuit["cost_after"] <= circuit["cost_before"]
    noise = cost_model("fhe")
    assert circuit["cost_after"] == noise.metric(
        circuit["ands_after"], circuit["xors_after"],
        circuit["mult_depth_after"])


def test_run_batch_accepts_model_instance():
    model = FheNoiseBudgetCost(depth_weight=4)
    batch = run_batch(EngineConfig(circuits=["router"], objective=model,
                                   max_rounds=1))
    report = batch.reports[0]
    assert report.error is None
    assert report.cost_model == "fhe"
    assert report.cost_after == 4 * report.depth_after + report.ands_after


def test_fhe_level_cap_flags_budget():
    capped = FheNoiseBudgetCost(level_cap=3)
    assert capped.within_budget(3) is True
    assert capped.within_budget(4) is False
    assert FheNoiseBudgetCost().within_budget(4) is None
    config = EngineConfig(circuits=["router"], objective=capped, max_rounds=2)
    report = run_circuit(select_cases(config)[0], config)
    assert report.error is None
    assert report.within_budget == (report.depth_after <= 3)


# ----------------------------------------------------------------------
# fhe optimisation contract
# ----------------------------------------------------------------------
def test_fhe_objective_monotone_on_control_circuits():
    for builder in (C.int_to_float, lambda: C.priority_encoder(16)):
        xag = builder()
        result = optimize(xag, params=RewriteParams(objective="fhe"))
        assert equivalent(xag, result.final)
        assert result.final.num_ands <= xag.num_ands
        assert multiplicative_depth(result.final) <= multiplicative_depth(xag)


def test_custom_model_instance_in_rewriter(weighted_model):
    xag = C.int_to_float()
    result = optimize(xag, params=RewriteParams(objective=_AndWeightedCost()))
    baseline = optimize(xag)
    # mc-identical pricing must reach the mc result
    assert result.final.num_ands == baseline.final.num_ands
    assert equivalent(xag, result.final)


def test_diff_cost_model_flows():
    assert cost_model_flow("mc") == "mc,mc*"
    assert cost_model_flow("fhe") == "balance,guard(mc*),fhe*"
    with pytest.raises(ValueError, match="unknown cost model"):
        cost_model_flow("fast")
