"""Tests for the cut-function cache and the batch orchestration engine."""

import json
import os
import random

import pytest

from repro.testing import full_adder_naive, random_xag
from repro.cuts import CutFunctionCache, cut_function, enumerate_cuts
from repro.engine import EngineConfig, available_cases, run_batch, run_circuit
from repro.engine.cli import build_parser, config_from_args, main
from repro.engine.core import select_cases
from repro.mc import McDatabase
from repro.rewriting import CutRewriter, RewriteParams
from repro.xag.bitsim import SimulationCache


# ----------------------------------------------------------------------
# cut-function cache
# ----------------------------------------------------------------------
def test_cut_function_cache_memoises_cone_functions():
    xag = full_adder_naive()
    cuts = enumerate_cuts(xag, cut_size=3)
    cache = CutFunctionCache()
    some_cut = next(cut for node_cuts in cuts.values() for cut in node_cuts)

    uncached = cut_function(xag, some_cut)
    assert cut_function(xag, some_cut, cache=cache) == uncached
    assert cut_function(xag, some_cut, cache=cache) == uncached
    assert cache.function_misses == 1
    assert cache.function_hits == 1


def test_cut_function_cache_resets_on_rebind():
    left = full_adder_naive()
    right = random_xag(random.Random(1), num_pis=3, num_gates=10)
    cache = CutFunctionCache()
    cut = next(cut for node_cuts in enumerate_cuts(left, cut_size=3).values()
               for cut in node_cuts)
    cut_function(left, cut, cache=cache)
    assert len(cache._functions) == 1
    cache.bind(right)                     # different network → memo dropped
    assert len(cache._functions) == 0


def test_cut_function_cache_invalidated_by_rollback():
    """Rollback recycles node indices; the cone memo must not survive it."""
    from repro.cuts import Cut
    from repro.xag import Xag

    xag = Xag()
    a, b = xag.create_pis(2)
    checkpoint = xag.checkpoint()
    gate = xag.create_and(a, b)
    cut = Cut(gate >> 1, (a >> 1, b >> 1))
    cache = CutFunctionCache()
    assert cut_function(xag, cut, cache=cache) == 0b1000

    xag.rollback(checkpoint)
    xag.create_xor(a, b)                     # reuses the rolled-back index
    assert cut_function(xag, cut, cache=cache) == 0b0110


def test_cut_function_cache_plans_match_database():
    database = McDatabase()
    cache = CutFunctionCache(database)
    rng = random.Random(2)
    from repro.tt import random_table

    for _ in range(10):
        num_vars = rng.randint(2, 4)
        table = random_table(num_vars, rng)
        plan = cache.plan_for(table, num_vars)
        again = cache.plan_for(table, num_vars)
        assert again is plan              # exact-table level hit
        reference = database.plan_for(table, num_vars)
        assert reference.representative == plan.representative
        assert reference.num_ands == plan.num_ands
    assert cache.plan_hits == 10
    assert cache.plan_misses == 10
    stats = cache.stats()
    assert stats["plan_hit_rate"] == 0.5
    assert stats["stored_plans"] == len(cache) <= 10

    cache.clear()
    assert cache.plan_hits == 0 and len(cache) == 0
    assert len(database) > 0              # the database itself is untouched


def test_rewriter_shares_cut_cache_across_rounds():
    """Plans resolved in round 1 must be cache hits in round 2."""
    xag = random_xag(random.Random(3), num_pis=6, num_gates=40)
    rewriter = CutRewriter(params=RewriteParams(cut_size=4))
    first, stats1 = rewriter.rewrite(xag)
    _, stats2 = rewriter.rewrite(first)
    assert stats1.plan_cache_misses > 0
    assert stats2.plan_cache_hits > 0
    # truth tables recur heavily between rounds of the same network
    assert stats2.plan_cache_hits >= stats2.plan_cache_misses


def test_rewriter_rejects_mismatched_cache_database():
    with pytest.raises(ValueError):
        CutRewriter(database=McDatabase(), cut_cache=CutFunctionCache(McDatabase()))


# ----------------------------------------------------------------------
# engine: case selection
# ----------------------------------------------------------------------
def test_available_cases_suites():
    epfl = available_cases(("epfl",))
    crypto = available_cases(("crypto",))
    corpus = available_cases(("corpus",))
    everything = available_cases(("all",))
    assert {case.group for case in epfl} == {"arithmetic", "control"}
    assert all(case.group == "mpc" for case in crypto)
    assert {case.group for case in corpus} == \
        {"arithmetic-sweep", "control-sweep", "crypto-full"}
    assert len(everything) == len(epfl) + len(crypto) + len(corpus)
    with pytest.raises(ValueError):
        available_cases(("nope",))


def test_select_cases_filters():
    config = EngineConfig(suites=("epfl",), groups=["control"])
    cases = select_cases(config)
    assert cases and all(case.group == "control" for case in cases)

    config = EngineConfig(suites=("epfl",), circuits=["decoder", "adder"])
    names = [case.name for case in select_cases(config)]
    assert names == ["decoder", "adder"]

    with pytest.raises(ValueError):
        select_cases(EngineConfig(suites=("epfl",), circuits=["not_a_circuit"]))


# ----------------------------------------------------------------------
# engine: running circuits
# ----------------------------------------------------------------------
def test_run_circuit_reports_stages_and_verifies():
    case = next(case for case in available_cases(("epfl",)) if case.name == "alu_ctrl")
    config = EngineConfig(suites=("epfl",), max_rounds=1)
    report = run_circuit(case, config)
    assert report.error is None
    assert report.verified is True
    assert report.ands_after <= report.ands_before
    assert report.rounds and report.rounds[0].verified is True
    stages = report.stage_timings()
    assert set(stages) == {"build", "baseline", "one_round", "convergence",
                           "verify", "select", "apply", "balance"}
    assert stages["baseline"] == 0.0          # size_baseline off by default
    assert stages["select"] > 0               # Phase-1 time is accounted
    assert report.total_seconds > 0


def test_run_circuit_survives_broken_case():
    from repro.circuits.benchmark_case import BenchmarkCase, PaperNumbers

    def explode():
        raise RuntimeError("boom")

    broken = BenchmarkCase(name="broken", group="control",
                           paper=PaperNumbers(1, 1, 1, 0, 1, 0, 0.0, 1, 0, 0.0),
                           build_default=explode, build_full=explode)
    report = run_circuit(broken, EngineConfig())
    assert report.error is not None and "boom" in report.error


def test_run_batch_shares_caches_and_renders():
    config = EngineConfig(suites=("epfl",), circuits=["decoder"], max_rounds=1)
    batch = run_batch(config)
    assert len(batch.reports) == 1 and not batch.failed
    assert batch.total_seconds > 0
    assert batch.cut_cache_stats["plan_misses"] > 0
    rendered = batch.render()
    assert "decoder" in rendered
    assert "plan cache" in rendered


def test_run_batch_skips_verification_above_limit():
    config = EngineConfig(suites=("epfl",), circuits=["decoder"], max_rounds=1,
                          verify_limit=1)
    batch = run_batch(config)
    report = batch.reports[0]
    assert report.error is None
    assert report.verified is None        # too large for the verify budget


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_config_mapping():
    args = build_parser().parse_args(
        ["--suite", "crypto", "--circuits", "md5,sha_256", "--rounds", "0",
         "--cut-size", "4", "--full-scale"])
    config = config_from_args(args)
    assert config.suites == ("crypto",)
    assert config.circuits == ["md5", "sha_256"]
    assert config.max_rounds is None
    assert config.cut_size == 4
    assert config.full_scale is True


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "adder" in out and "voter" in out


def test_cli_runs_and_writes_json(tmp_path, capsys):
    json_path = tmp_path / "report.json"
    exit_code = main(["--suite", "epfl", "--circuits", "decoder", "--rounds", "1",
                      "--json", str(json_path)])
    assert exit_code == 0
    payload = json.loads(json_path.read_text())
    assert set(payload) == {"config", "summary", "circuits"}
    assert payload["config"]["suites"] == ["epfl"]
    assert payload["config"]["jobs"] == 1
    assert payload["summary"]["warm_start_loaded"] is False
    assert payload["summary"]["cut_cache"]["plan_misses"] > 0
    circuit = payload["circuits"][0]
    assert circuit["name"] == "decoder"
    assert circuit["verified"] is True
    assert set(circuit["stage_seconds"]) == {"build", "baseline", "one_round",
                                             "convergence", "verify",
                                             "select", "apply", "balance"}
    # depth is reported for every objective (monotonicity is only an
    # "mc-depth" guarantee, so only presence is asserted here)
    assert circuit["mult_depth_before"] >= 0
    assert circuit["mult_depth_after"] >= 0
    assert "decoder" in capsys.readouterr().out


def test_cli_rejects_negative_rounds(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--rounds", "-3"])
    assert excinfo.value.code == 2
    assert "non-negative" in capsys.readouterr().err


def test_cli_rejects_bad_jobs(capsys):
    for bad in ("0", "-2", "two"):
        with pytest.raises(SystemExit) as excinfo:
            main(["--jobs", bad])
        assert excinfo.value.code == 2
    # 'auto' is the one CLI spelling of the automatic pool width (jobs=0)
    args = build_parser().parse_args(["--jobs", "auto"])
    assert config_from_args(args).jobs == 0


def test_cli_rejects_non_positive_cut_parameters(capsys):
    """Regression: --cut-size/--cut-limit silently accepted <= 0 (plain int);
    they must fail argparse validation with exit code 2 like --rounds."""
    for flag in ("--cut-size", "--cut-limit"):
        for bad in ("0", "-4", "six"):
            with pytest.raises(SystemExit) as excinfo:
                main([flag, bad])
            assert excinfo.value.code == 2, (flag, bad)
    err = capsys.readouterr().err
    assert "positive" in err


def test_cli_rejects_negative_verify_limit(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--verify-limit", "-1"])
    assert excinfo.value.code == 2
    assert "non-negative" in capsys.readouterr().err
    # 0 stays legal: it disables verification
    args = build_parser().parse_args(["--verify-limit", "0"])
    assert args.verify_limit == 0


def test_cli_rejects_unknown_objective(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--objective", "fast"])
    assert excinfo.value.code == 2


def test_cli_objective_plumbs_into_config():
    args = build_parser().parse_args(["--objective", "mc-depth"])
    assert config_from_args(args).objective == "mc-depth"
    assert config_from_args(build_parser().parse_args([])).objective == "mc"


def test_run_batch_rejects_unknown_objective():
    with pytest.raises(ValueError, match="unknown cost model"):
        run_batch(EngineConfig(circuits=["decoder"], objective="fast"))


def test_engine_mc_depth_objective_reports_depth(tmp_path, capsys):
    json_path = tmp_path / "depth.json"
    exit_code = main(["--circuits", "int2float", "--rounds", "2",
                      "--objective", "mc-depth", "--json", str(json_path)])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "[mc-depth]" in out
    payload = json.loads(json_path.read_text())
    assert payload["config"]["objective"] == "mc-depth"
    circuit = payload["circuits"][0]
    assert circuit["mult_depth_after"] <= circuit["mult_depth_before"]
    assert circuit["verified"] is True
    assert circuit["stage_seconds"]["balance"] >= 0.0


def test_cli_db_flag_sets_warm_start_and_persist(tmp_path):
    bundle = tmp_path / "db.json"
    args = build_parser().parse_args(["--db", str(bundle), "--jobs", "3"])
    config = config_from_args(args)
    assert config.warm_start == str(bundle)
    assert config.persist == str(bundle)
    assert config.jobs == 3


def test_cli_db_round_trip(tmp_path, capsys):
    """Second CLI run against the same --db bundle must be a warm start."""
    bundle = tmp_path / "db.json"
    assert main(["--circuits", "decoder", "--rounds", "1", "--db", str(bundle)]) == 0
    first = capsys.readouterr().out
    assert "warm-start bundle created" in first
    assert bundle.exists()

    assert main(["--circuits", "decoder", "--rounds", "1", "--db", str(bundle)]) == 0
    second = capsys.readouterr().out
    assert "warm-start bundle loaded and updated" in second
    assert "[warm start]" in second
    assert " 0 misses" in second          # plan cache fully warm
    assert " 0 synthesis calls" in second


# ----------------------------------------------------------------------
# warm start and persistence (tentpole)
# ----------------------------------------------------------------------
def test_run_batch_persist_then_warm_start(tmp_path):
    """Save→load→rerun: the warm run does no new classification/synthesis."""
    bundle = tmp_path / "warm.json"
    base = dict(suites=("epfl",), circuits=["decoder", "int2float"], max_rounds=1)
    cold = run_batch(EngineConfig(**base, persist=bundle))
    assert not cold.failed and bundle.exists()
    assert cold.cut_cache_stats["plan_misses"] > 0
    assert cold.database_stats["synthesis_calls"] > 0

    warm = run_batch(EngineConfig(**base, warm_start=bundle))
    assert warm.warm_start_loaded is True
    assert warm.cut_cache_stats["plan_misses"] == 0
    assert warm.database_stats["classification_misses"] == 0
    assert warm.database_stats["synthesis_calls"] == 0
    for cold_report, warm_report in zip(cold.reports, warm.reports):
        assert cold_report.name == warm_report.name
        assert cold_report.ands_after == warm_report.ands_after
        assert cold_report.xors_after == warm_report.xors_after


def test_run_batch_missing_warm_start_is_cold(tmp_path):
    batch = run_batch(EngineConfig(suites=("epfl",), circuits=["decoder"],
                                   max_rounds=1,
                                   warm_start=tmp_path / "missing.json"))
    assert batch.warm_start_loaded is False
    assert not batch.failed


# ----------------------------------------------------------------------
# worker pool (tentpole)
# ----------------------------------------------------------------------
def test_jobs_two_matches_jobs_one():
    """Pool runs must report identical results in registry order."""
    base = dict(suites=("epfl",), circuits=["decoder", "int2float"], max_rounds=1)
    sequential = run_batch(EngineConfig(**base, jobs=1))
    pooled = run_batch(EngineConfig(**base, jobs=2))
    assert pooled.jobs == 2
    assert pooled.workers == 2
    assert len(pooled.worker_stats) == 2
    assert [r.name for r in pooled.reports] == [r.name for r in sequential.reports]
    for seq, par in zip(sequential.reports, pooled.reports):
        assert seq.error is None and par.error is None
        assert (seq.ands_before, seq.xors_before) == (par.ands_before, par.xors_before)
        assert (seq.ands_after, seq.xors_after) == (par.ands_after, par.xors_after)
        assert seq.verified == par.verified
    # aggregated worker counters land in the batch-level statistics
    assert pooled.cut_cache_stats["plan_misses"] > 0
    assert pooled.database_stats["synthesis_calls"] > 0
    # the merged shared store holds every worker's recipes
    assert pooled.database_stats["stored_recipes"] > 0


def test_workers_capped_by_case_count():
    batch = run_batch(EngineConfig(suites=("epfl",), circuits=["decoder"],
                                   max_rounds=1, jobs=8))
    assert batch.jobs == 8                # the requested width is reported...
    assert batch.workers == 1             # ...but one case → no point forking
    assert not batch.failed


def test_run_batch_rejects_negative_jobs():
    with pytest.raises(ValueError):
        run_batch(EngineConfig(suites=("epfl",), circuits=["decoder"], jobs=-1))


def test_jobs_zero_resolves_to_cpu_count():
    """jobs=0 is the auto sentinel: one worker per CPU, clamped by cases."""
    batch = run_batch(EngineConfig(suites=("epfl",), circuits=["decoder"],
                                   max_rounds=1, jobs=0))
    assert batch.jobs == (os.cpu_count() or 1)
    assert batch.workers == 1
    assert not batch.failed


def test_worker_state_honours_direct_mode():
    """Workers must inherit the batch's classification mode, so an ablation
    run (use_classification=False) stays identical under --jobs."""
    from repro.engine.parallel import _WorkerState

    config = EngineConfig(suites=("epfl",), max_rounds=1)
    state = _WorkerState(config, None, use_classification=False)
    report = state.run("alu_ctrl")
    stats = state.stats()
    assert report.error is None
    assert stats["database"]["classification_misses"] == 0   # classifier unused
    assert stats["database"]["synthesis_calls"] > 0
    # everything the worker learnt streams back as one content-addressed delta
    delta = state.push()
    assert delta is not None and delta["recipes"]
    assert state.push() is None           # cursor drained: nothing new


def test_pool_run_persists_merged_bundle(tmp_path):
    """A pool run's bundle must warm-start a later sequential run."""
    bundle = tmp_path / "merged.json"
    base = dict(suites=("epfl",), circuits=["decoder", "int2float"], max_rounds=1)
    pooled = run_batch(EngineConfig(**base, jobs=2, persist=bundle))
    assert not pooled.failed and bundle.exists()

    warm = run_batch(EngineConfig(**base, warm_start=bundle))
    assert warm.warm_start_loaded is True
    assert warm.cut_cache_stats["plan_misses"] == 0
    assert warm.database_stats["synthesis_calls"] == 0


# ----------------------------------------------------------------------
# whole-circuit result cache (content-addressed)
# ----------------------------------------------------------------------
def _synthetic_case(name, builder):
    """Benchmark case over a zero-argument network builder."""
    from repro.circuits.benchmark_case import BenchmarkCase, PaperNumbers

    return BenchmarkCase(name=name, group="control",
                         paper=PaperNumbers(1, 1, 1, 0, 1, 0, 0.0, 1, 0, 0.0),
                         build_default=builder, build_full=builder)


def test_result_cache_hits_renamed_permuted_copy():
    """A renamed, creation-order-permuted copy of an optimised circuit must
    hit the result cache and return bit-identical numbers — the pipeline
    never runs (acceptance criterion of the content-addressing tentpole)."""
    from repro.engine.core import ResultCache
    from repro.testing.diff import _permuted_copy

    def build_original():
        return random_xag(random.Random(77), num_pis=5, num_gates=45,
                          num_pos=2, and_bias=0.6)

    def build_renamed():
        from repro.xag.serialize import from_dict, to_dict

        payload = to_dict(_permuted_copy(build_original(), random.Random(3)))
        payload["name"] = "different-name"
        payload["pi_names"] = [f"in{i}" for i in range(payload["num_pis"])]
        payload["po_names"] = [f"out{i}" for i
                               in range(len(payload["po_names"]))]
        return from_dict(payload)

    config = EngineConfig(suites=("epfl",), max_rounds=1)
    cache = ResultCache()
    database = McDatabase()
    cold = run_circuit(_synthetic_case("original", build_original), config,
                       database=database, result_cache=cache)
    assert cold.error is None and cold.result_cache_hit is False
    assert (cache.hits, cache.misses) == (0, 1)

    warm = run_circuit(_synthetic_case("renamed", build_renamed), config,
                       database=database, result_cache=cache)
    assert warm.error is None and warm.result_cache_hit is True
    assert (cache.hits, cache.misses) == (1, 1)
    assert (warm.ands_after, warm.xors_after, warm.depth_after) == \
        (cold.ands_after, cold.xors_after, cold.depth_after)
    assert (warm.cost_before, warm.cost_after) == \
        (cold.cost_before, cold.cost_after)
    assert len(warm.rounds) == len(cold.rounds)
    assert warm.verified == cold.verified
    # the cached hit spends build time only — no pipeline stages ran
    assert warm.convergence_seconds == 0.0


def test_result_cache_key_ignores_execution_knobs():
    """Backend/jobs/in-place change *how* the pipeline runs, never what it
    produces (the A/B contract), so they must not fragment the key; the
    cut parameters, flow and cost model do change the result and must."""
    from repro.engine.core import ResultCache

    digest = 0xABCDEF
    base = EngineConfig(suites=("epfl",), max_rounds=1)
    from dataclasses import replace
    assert ResultCache.key_for(digest, replace(base, jobs=4)) == \
        ResultCache.key_for(digest, base)
    assert ResultCache.key_for(digest, replace(base, in_place=False)) == \
        ResultCache.key_for(digest, base)
    assert ResultCache.key_for(digest, replace(base, backend="python")) == \
        ResultCache.key_for(digest, base)
    assert ResultCache.key_for(digest, replace(base, cut_size=4)) != \
        ResultCache.key_for(digest, base)
    assert ResultCache.key_for(digest, replace(base, flow="balance,mc*")) != \
        ResultCache.key_for(digest, base)
    assert ResultCache.key_for(digest, replace(base, objective="size")) != \
        ResultCache.key_for(digest, base)
    assert ResultCache.key_for(digest + 1, base) != \
        ResultCache.key_for(digest, base)


def test_result_cache_rejects_tampered_network():
    from repro.engine.core import ResultCache

    def build():
        return random_xag(random.Random(11), num_pis=4, num_gates=20)

    config = EngineConfig(suites=("epfl",), max_rounds=1)
    cache = ResultCache()
    report = run_circuit(_synthetic_case("victim", build), config,
                         result_cache=cache)
    assert report.error is None and len(cache) == 1

    entries = json.loads(json.dumps(cache.entries()))  # detached copy
    (key,) = list(cache._entries)
    # integrity: a hand-edited stored network must be rejected on read...
    cache._entries[key]["network"]["outputs"][0] ^= 1
    with pytest.raises(ValueError, match="hashes to"):
        cache.network_for(key)
    # ... and a tampered bundle entry must be rejected on install
    entries[0]["network"]["outputs"][0] ^= 1
    with pytest.raises(ValueError, match="hashing to"):
        ResultCache().install(entries)
    assert ResultCache().install(entries, validate=False) == 1


def test_result_cache_persists_and_shards_through_db(tmp_path):
    """--result-cache results travel in the v3 bundle: a cold run stores
    them, a warm run (sequential or sharded) replays without a pipeline."""
    bundle = tmp_path / "results.json"
    base = dict(suites=("epfl",), circuits=["decoder", "int2float"],
                max_rounds=1, result_cache=True)
    cold = run_batch(EngineConfig(**base, persist=bundle))
    assert not cold.failed and bundle.exists()
    assert cold.result_cache_stats["hits"] == 0
    assert cold.result_cache_stats["misses"] == 2
    assert cold.result_cache_stats["stored_results"] == 2
    payload = json.loads(bundle.read_text())
    assert len(payload["results"]) == 2

    warm = run_batch(EngineConfig(**base, warm_start=bundle))
    assert warm.warm_start_loaded is True
    assert warm.result_cache_stats["hits"] == 2
    assert warm.result_cache_stats["misses"] == 0
    assert warm.cut_cache_stats["plan_misses"] == 0
    for cold_report, warm_report in zip(cold.reports, warm.reports):
        assert warm_report.result_cache_hit is True
        assert warm_report.ands_after == cold_report.ands_after
        assert warm_report.xors_after == cold_report.xors_after
        assert warm_report.depth_after == cold_report.depth_after
    assert "result cache" in warm.render()

    sharded = run_batch(EngineConfig(**base, warm_start=bundle, jobs=2))
    assert not sharded.failed
    assert sharded.result_cache_stats["hits"] == 2
    for report in sharded.reports:
        assert report.result_cache_hit is True


def test_result_cache_off_by_default():
    batch = run_batch(EngineConfig(suites=("epfl",), circuits=["decoder"],
                                   max_rounds=1))
    assert batch.result_cache_stats is None
    assert "result cache" not in batch.render()


# ----------------------------------------------------------------------
# batch report rendering (regression: the summary shows live metrics)
# ----------------------------------------------------------------------
def test_batch_report_summary_pins_meaningful_metrics():
    """The summary reports plan hit rate and db counters, not the dead
    classification hit rate (structurally 0 behind the plan memo)."""
    from repro.engine.core import BatchReport, CircuitReport

    batch = BatchReport(config=EngineConfig(), jobs=2, workers=2,
                        warm_start_loaded=True)
    batch.reports = [CircuitReport(name="decoder", group="control")]
    batch.total_seconds = 1.5
    batch.cut_cache_stats = {"plan_hits": 30, "plan_misses": 10}
    batch.database_stats = {"stored_recipes": 4, "synthesis_calls": 5}
    summary = batch.render().splitlines()[-1]
    assert summary == ("1/1 circuits in 1.50s [2 workers] [warm start] "
                       "[python kernels] | "
                       "plan cache 30 hits / 10 misses (75% hit rate) | "
                       "db 4 recipes / 5 synthesis calls | "
                       "sim cache 0 hits / 0 misses")
    assert "classification hit rate" not in batch.render()


# ----------------------------------------------------------------------
# incremental verification equivalence (tentpole acceptance)
# ----------------------------------------------------------------------
def test_cached_flow_produces_same_result_as_uncached():
    """Shared caches must not change the optimisation result, only its cost."""
    from repro.rewriting import optimize

    xag = random_xag(random.Random(4), num_pis=6, num_gates=45)
    plain = optimize(xag, max_rounds=2)
    cached = optimize(xag, max_rounds=2,
                      cut_cache=CutFunctionCache(), sim_cache=SimulationCache())
    assert plain.final.num_ands == cached.final.num_ands
    assert plain.final.num_xors == cached.final.num_xors
    from repro.xag import equivalent
    assert equivalent(plain.final, cached.final)
