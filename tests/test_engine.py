"""Tests for the cut-function cache and the batch orchestration engine."""

import json
import random

import pytest

from helpers import full_adder_naive, random_xag
from repro.cuts import CutFunctionCache, cut_function, enumerate_cuts
from repro.engine import EngineConfig, available_cases, run_batch, run_circuit
from repro.engine.cli import build_parser, config_from_args, main
from repro.engine.core import select_cases
from repro.mc import McDatabase
from repro.rewriting import CutRewriter, RewriteParams
from repro.xag.bitsim import SimulationCache


# ----------------------------------------------------------------------
# cut-function cache
# ----------------------------------------------------------------------
def test_cut_function_cache_memoises_cone_functions():
    xag = full_adder_naive()
    cuts = enumerate_cuts(xag, cut_size=3)
    cache = CutFunctionCache()
    some_cut = next(cut for node_cuts in cuts.values() for cut in node_cuts)

    uncached = cut_function(xag, some_cut)
    assert cut_function(xag, some_cut, cache=cache) == uncached
    assert cut_function(xag, some_cut, cache=cache) == uncached
    assert cache.function_misses == 1
    assert cache.function_hits == 1


def test_cut_function_cache_resets_on_rebind():
    left = full_adder_naive()
    right = random_xag(random.Random(1), num_pis=3, num_gates=10)
    cache = CutFunctionCache()
    cut = next(cut for node_cuts in enumerate_cuts(left, cut_size=3).values()
               for cut in node_cuts)
    cut_function(left, cut, cache=cache)
    assert len(cache._functions) == 1
    cache.bind(right)                     # different network → memo dropped
    assert len(cache._functions) == 0


def test_cut_function_cache_invalidated_by_rollback():
    """Rollback recycles node indices; the cone memo must not survive it."""
    from repro.cuts import Cut
    from repro.xag import Xag

    xag = Xag()
    a, b = xag.create_pis(2)
    checkpoint = xag.checkpoint()
    gate = xag.create_and(a, b)
    cut = Cut(gate >> 1, (a >> 1, b >> 1))
    cache = CutFunctionCache()
    assert cut_function(xag, cut, cache=cache) == 0b1000

    xag.rollback(checkpoint)
    xag.create_xor(a, b)                     # reuses the rolled-back index
    assert cut_function(xag, cut, cache=cache) == 0b0110


def test_cut_function_cache_plans_match_database():
    database = McDatabase()
    cache = CutFunctionCache(database)
    rng = random.Random(2)
    from repro.tt import random_table

    for _ in range(10):
        num_vars = rng.randint(2, 4)
        table = random_table(num_vars, rng)
        plan = cache.plan_for(table, num_vars)
        again = cache.plan_for(table, num_vars)
        assert again is plan              # exact-table level hit
        reference = database.plan_for(table, num_vars)
        assert reference.representative == plan.representative
        assert reference.num_ands == plan.num_ands
    assert cache.plan_hits == 10
    assert cache.plan_misses == 10
    stats = cache.stats()
    assert stats["plan_hit_rate"] == 0.5
    assert stats["stored_plans"] == len(cache) <= 10

    cache.clear()
    assert cache.plan_hits == 0 and len(cache) == 0
    assert len(database) > 0              # the database itself is untouched


def test_rewriter_shares_cut_cache_across_rounds():
    """Plans resolved in round 1 must be cache hits in round 2."""
    xag = random_xag(random.Random(3), num_pis=6, num_gates=40)
    rewriter = CutRewriter(params=RewriteParams(cut_size=4))
    first, stats1 = rewriter.rewrite(xag)
    _, stats2 = rewriter.rewrite(first)
    assert stats1.plan_cache_misses > 0
    assert stats2.plan_cache_hits > 0
    # truth tables recur heavily between rounds of the same network
    assert stats2.plan_cache_hits >= stats2.plan_cache_misses


def test_rewriter_rejects_mismatched_cache_database():
    with pytest.raises(ValueError):
        CutRewriter(database=McDatabase(), cut_cache=CutFunctionCache(McDatabase()))


# ----------------------------------------------------------------------
# engine: case selection
# ----------------------------------------------------------------------
def test_available_cases_suites():
    epfl = available_cases(("epfl",))
    crypto = available_cases(("crypto",))
    both = available_cases(("all",))
    assert {case.group for case in epfl} == {"arithmetic", "control"}
    assert all(case.group == "mpc" for case in crypto)
    assert len(both) == len(epfl) + len(crypto)
    with pytest.raises(ValueError):
        available_cases(("nope",))


def test_select_cases_filters():
    config = EngineConfig(suites=("epfl",), groups=["control"])
    cases = select_cases(config)
    assert cases and all(case.group == "control" for case in cases)

    config = EngineConfig(suites=("epfl",), circuits=["decoder", "adder"])
    names = [case.name for case in select_cases(config)]
    assert names == ["decoder", "adder"]

    with pytest.raises(ValueError):
        select_cases(EngineConfig(suites=("epfl",), circuits=["not_a_circuit"]))


# ----------------------------------------------------------------------
# engine: running circuits
# ----------------------------------------------------------------------
def test_run_circuit_reports_stages_and_verifies():
    case = next(case for case in available_cases(("epfl",)) if case.name == "alu_ctrl")
    config = EngineConfig(suites=("epfl",), max_rounds=1)
    report = run_circuit(case, config)
    assert report.error is None
    assert report.verified is True
    assert report.ands_after <= report.ands_before
    assert report.rounds and report.rounds[0].verified is True
    stages = report.stage_timings()
    assert set(stages) == {"build", "baseline", "one_round", "convergence", "verify"}
    assert stages["baseline"] == 0.0          # size_baseline off by default
    assert report.total_seconds > 0


def test_run_circuit_survives_broken_case():
    from repro.circuits.benchmark_case import BenchmarkCase, PaperNumbers

    def explode():
        raise RuntimeError("boom")

    broken = BenchmarkCase(name="broken", group="control",
                           paper=PaperNumbers(1, 1, 1, 0, 1, 0, 0.0, 1, 0, 0.0),
                           build_default=explode, build_full=explode)
    report = run_circuit(broken, EngineConfig())
    assert report.error is not None and "boom" in report.error


def test_run_batch_shares_caches_and_renders():
    config = EngineConfig(suites=("epfl",), circuits=["decoder"], max_rounds=1)
    batch = run_batch(config)
    assert len(batch.reports) == 1 and not batch.failed
    assert batch.total_seconds > 0
    assert batch.cut_cache_stats["plan_misses"] > 0
    rendered = batch.render()
    assert "decoder" in rendered
    assert "plan cache" in rendered


def test_run_batch_skips_verification_above_limit():
    config = EngineConfig(suites=("epfl",), circuits=["decoder"], max_rounds=1,
                          verify_limit=1)
    batch = run_batch(config)
    report = batch.reports[0]
    assert report.error is None
    assert report.verified is None        # too large for the verify budget


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_config_mapping():
    args = build_parser().parse_args(
        ["--suite", "crypto", "--circuits", "md5,sha_256", "--rounds", "0",
         "--cut-size", "4", "--full-scale"])
    config = config_from_args(args)
    assert config.suites == ("crypto",)
    assert config.circuits == ["md5", "sha_256"]
    assert config.max_rounds is None
    assert config.cut_size == 4
    assert config.full_scale is True


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "adder" in out and "voter" in out


def test_cli_runs_and_writes_json(tmp_path, capsys):
    json_path = tmp_path / "report.json"
    exit_code = main(["--suite", "epfl", "--circuits", "decoder", "--rounds", "1",
                      "--json", str(json_path)])
    assert exit_code == 0
    payload = json.loads(json_path.read_text())
    assert payload[0]["name"] == "decoder"
    assert payload[0]["verified"] is True
    assert "decoder" in capsys.readouterr().out


# ----------------------------------------------------------------------
# incremental verification equivalence (tentpole acceptance)
# ----------------------------------------------------------------------
def test_cached_flow_produces_same_result_as_uncached():
    """Shared caches must not change the optimisation result, only its cost."""
    from repro.rewriting import optimize

    xag = random_xag(random.Random(4), num_pis=6, num_gates=45)
    plain = optimize(xag, max_rounds=2)
    cached = optimize(xag, max_rounds=2,
                      cut_cache=CutFunctionCache(), sim_cache=SimulationCache())
    assert plain.final.num_ands == cached.final.num_ands
    assert plain.final.num_xors == cached.final.num_xors
    from repro.xag import equivalent
    assert equivalent(plain.final, cached.final)
