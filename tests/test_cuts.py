"""Tests for cut enumeration, cut functions and MFFC computation."""

import pytest

from repro.testing import full_adder_naive, random_xag
from repro.cuts import Cut, cut_and_count, cut_cone, cut_function, enumerate_cuts, mffc, \
    mffc_and_count
from repro.xag.graph import Xag, lit_node
from repro.xag.simulate import node_truth_tables
from repro.tt.operations import shrink_to_support
from repro.tt.bits import projection


def test_cut_dataclass():
    cut = Cut(7, (1, 2, 3))
    assert cut.size == 3
    assert not cut.is_trivial()
    assert Cut(7, (7,)).is_trivial()
    assert Cut(7, (1, 2)).dominates(cut)
    assert not cut.dominates(Cut(7, (1, 2)))


def test_enumeration_parameters_validated():
    xag = full_adder_naive()
    with pytest.raises(ValueError):
        enumerate_cuts(xag, cut_size=1)
    with pytest.raises(ValueError):
        enumerate_cuts(xag, cut_limit=0)


def test_full_adder_has_majority_cut():
    """The cout node must have the {a, b, cin} cut highlighted in paper Fig. 1(b)."""
    fa = full_adder_naive()
    cuts = enumerate_cuts(fa, cut_size=3)
    cout_node = lit_node(fa.po_literal(1))
    leaves_of_cuts = [cut.leaves for cut in cuts[cout_node]]
    pi_leaves = tuple(fa.pis())
    assert pi_leaves in leaves_of_cuts
    majority_cut = next(cut for cut in cuts[cout_node] if cut.leaves == pi_leaves)
    # the cut root is the OR node feeding cout through a complemented edge, so
    # the cut function is the complement of the majority 0xE8 highlighted in
    # Fig. 1(b) — same affine class, same multiplicative complexity.
    assert cut_function(fa, majority_cut) in (0xE8, 0xE8 ^ 0xFF)
    assert cut_and_count(fa, majority_cut) == 3


def test_pis_have_no_cuts():
    fa = full_adder_naive()
    cuts = enumerate_cuts(fa)
    for node in fa.pis():
        assert cuts[node] == []


def test_cut_size_limit_respected():
    xag = random_xag(__import__("random").Random(3), num_pis=8, num_gates=50)
    for cut_size in (2, 3, 4, 6):
        cuts = enumerate_cuts(xag, cut_size=cut_size)
        for node_cuts in cuts.values():
            for cut in node_cuts:
                assert 1 <= cut.size <= cut_size


def test_cut_limit_respected():
    xag = random_xag(__import__("random").Random(4), num_pis=8, num_gates=60)
    for limit in (1, 4, 12):
        cuts = enumerate_cuts(xag, cut_size=4, cut_limit=limit)
        for node_cuts in cuts.values():
            assert len(node_cuts) <= limit


def test_no_dominated_cuts():
    xag = random_xag(__import__("random").Random(5), num_pis=6, num_gates=40)
    cuts = enumerate_cuts(xag, cut_size=4)
    for node_cuts in cuts.values():
        leaf_sets = [set(cut.leaves) for cut in node_cuts]
        for i, left in enumerate(leaf_sets):
            for j, right in enumerate(leaf_sets):
                if i != j:
                    assert not left < right


def test_cut_functions_match_node_functions():
    """The function of every cut, composed with its leaves, equals the node function."""
    import random as random_module

    xag = random_xag(random_module.Random(6), num_pis=6, num_gates=35)
    tables = node_truth_tables(xag)
    cuts = enumerate_cuts(xag, cut_size=4, cut_limit=6)
    checked = 0
    for node, node_cuts in cuts.items():
        for cut in node_cuts[:3]:
            local = cut_function(xag, cut)
            # evaluate the cut function on the global truth tables of its leaves
            composed = 0
            for row in range(1 << 6):
                assignment = 0
                for position, leaf in enumerate(cut.leaves):
                    if (tables[leaf] >> row) & 1:
                        assignment |= 1 << position
                if (local >> assignment) & 1:
                    composed |= 1 << row
            assert composed == tables[node]
            checked += 1
    assert checked > 10


def test_cut_cone_and_errors():
    fa = full_adder_naive()
    cout_node = lit_node(fa.po_literal(1))
    cone = cut_cone(fa, cout_node, fa.pis())
    assert cout_node in cone
    assert len(cone) >= 4
    with pytest.raises(ValueError):
        cut_cone(fa, cout_node, [fa.pis()[0]])


def test_mffc_simple_chain():
    xag = Xag()
    a, b, c = xag.create_pis(3)
    g1 = xag.create_and(a, b)
    g2 = xag.create_and(g1, c)
    xag.create_po(g2, "y")
    cone = mffc(xag, lit_node(g2))
    assert cone == {lit_node(g1), lit_node(g2)}
    assert mffc_and_count(xag, lit_node(g2)) == 2


def test_mffc_respects_external_fanout():
    xag = Xag()
    a, b, c = xag.create_pis(3)
    shared = xag.create_and(a, b)
    top = xag.create_and(shared, c)
    xag.create_po(top, "y")
    xag.create_po(shared, "z")      # shared node has an external fanout
    cone = mffc(xag, lit_node(top))
    assert cone == {lit_node(top)}


def test_mffc_of_non_gate_is_empty():
    xag = Xag()
    a = xag.create_pi()
    assert mffc(xag, lit_node(a)) == set()
