"""Tests for metrics, table rendering and the benchmark registries."""

import pytest

from repro.analysis import (
    TableRow,
    geometric_mean,
    improvement,
    measure,
    normalized_geometric_mean,
    render_paper_comparison,
    render_results_table,
    rows_to_markdown,
)
from repro.circuits import epfl_benchmark_map, epfl_benchmarks
from repro.circuits.arithmetic import full_adder
from repro.circuits.crypto import mpc_benchmark_map, mpc_benchmarks
from repro.rewriting import RewriteParams, paper_flow


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_measure_full_adder():
    metrics = measure(full_adder(style="naive"))
    assert metrics.num_pis == 3
    assert metrics.num_pos == 2
    assert metrics.num_ands == 3
    assert metrics.num_gates == metrics.num_ands + metrics.num_xors
    assert metrics.multiplicative_depth <= metrics.depth


def test_improvement():
    assert improvement(100, 66) == pytest.approx(0.34)
    assert improvement(0, 0) == 0.0


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) is None
    assert geometric_mean([0.0, 0.0]) is None


def test_normalized_geometric_mean_matches_paper_style():
    befores = [100, 200]
    afters = [50, 100]
    assert normalized_geometric_mean(befores, afters) == pytest.approx(0.5)


def test_normalized_geometric_mean_counts_fully_optimised_circuits():
    """Regression: a circuit optimised to 0 ANDs must *improve* the mean.

    The old implementation skipped the zero ratio (``geometric_mean`` drops
    non-positive entries), reporting the same mean as if the best row did
    not exist — i.e. full optimisation inflated the paper's "Normalized
    geometric mean" row instead of lowering it.
    """
    with_zero = normalized_geometric_mean([10, 10], [5, 0])
    without_entry = normalized_geometric_mean([10], [5])
    almost_zero = normalized_geometric_mean([10, 10], [5, 1])
    assert with_zero is not None
    assert with_zero < without_entry          # the old bug made these equal
    assert with_zero < almost_zero            # 0 ANDs beats 1 AND
    # documented epsilon: the zero row contributes 0.5 / before
    assert with_zero == pytest.approx((0.5 * 0.05) ** 0.5)
    # epsilon is tunable
    assert normalized_geometric_mean([10], [0], zero_epsilon=0.1) == \
        pytest.approx(0.01)


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------
def test_epfl_registry_covers_table1():
    names = {case.name for case in epfl_benchmarks()}
    expected = {"adder", "barrel_shifter", "divisor", "log2", "max", "multiplier", "sine",
                "square_root", "square", "arbiter", "alu_ctrl", "cavlc", "decoder", "i2c",
                "int2float", "mem_ctrl", "priority", "router", "voter"}
    assert names == expected
    groups = {case.group for case in epfl_benchmarks()}
    assert groups == {"arithmetic", "control"}


def test_mpc_registry_covers_table2():
    cases = mpc_benchmarks()
    assert len(cases) == 14
    assert all(case.group == "mpc" for case in cases)
    names = {case.name for case in cases}
    assert {"aes_128", "des", "md5", "sha1", "sha256", "adder_32", "adder_64"} <= names


def test_registry_paper_numbers_are_consistent():
    for case in epfl_benchmarks() + mpc_benchmarks():
        paper = case.paper
        assert paper.initial_and >= 0
        assert 0.0 <= paper.one_round_improvement <= 1.0
        assert 0.0 <= paper.convergence_improvement <= 1.0
        if paper.convergence_and is not None:
            assert paper.convergence_and <= paper.initial_and
        assert paper.convergence_improvement >= paper.one_round_improvement


def test_registry_maps():
    assert epfl_benchmark_map()["adder"].group == "arithmetic"
    assert mpc_benchmark_map()["sha256"].group == "mpc"


def test_small_benchmarks_build_at_default_scale():
    quick = {"adder", "decoder", "int2float", "alu_ctrl", "router", "priority"}
    for case in epfl_benchmarks():
        if case.name in quick:
            xag = case.build(full_scale=False)
            assert xag.num_pis > 0 and xag.num_pos > 0


def test_mpc_comparators_build_paper_sized():
    for name in ("comparator_slt_32", "comparator_ult_32"):
        case = mpc_benchmark_map()[name]
        xag = case.build()
        assert xag.num_pis == case.paper.inputs
        assert xag.num_pos == case.paper.outputs


# ----------------------------------------------------------------------
# table rendering
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def example_rows():
    case = epfl_benchmark_map()["adder"]
    xag = case.build_default()
    result = paper_flow(xag, name=case.name, params=RewriteParams(cut_size=4, cut_limit=6),
                        max_rounds=2)
    return [TableRow(case=case, result=result)]


def test_render_results_table(example_rows):
    text = render_results_table(example_rows, "Table 1 (excerpt)")
    assert "Table 1 (excerpt)" in text
    assert "adder" in text
    assert "Normalized geometric mean" in text


def test_render_paper_comparison(example_rows):
    text = render_paper_comparison(example_rows, "comparison")
    assert "paper impr" in text
    assert "adder" in text


def test_rows_to_markdown(example_rows):
    text = rows_to_markdown(example_rows, "Table 1")
    assert text.startswith("### Table 1")
    assert "| adder |" in text
