"""Tests for repro.tt.operations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.tt import bits, operations as ops
from repro.tt.properties import depends_on, support


def tables(num_vars):
    return st.integers(min_value=0, max_value=bits.table_mask(num_vars))


def test_negate_is_involution():
    rng = random.Random(1)
    for num_vars in range(1, 7):
        table = bits.random_table(num_vars, rng)
        assert ops.negate(ops.negate(table, num_vars), num_vars) == table


def test_cofactor_values():
    # f = x0 AND x1 on 2 variables: table 0b1000
    table = 0b1000
    assert ops.cofactor(table, 0, 1, 2) == 0b1100  # f|x0=1 = x1
    assert ops.cofactor(table, 0, 0, 2) == 0       # f|x0=0 = 0


def test_cofactor_removes_dependency():
    rng = random.Random(2)
    for _ in range(20):
        num_vars = rng.randint(1, 6)
        table = bits.random_table(num_vars, rng)
        var = rng.randrange(num_vars)
        for value in (0, 1):
            cof = ops.cofactor(table, var, value, num_vars)
            assert not depends_on(cof, var, num_vars)


def test_cofactor_rejects_bad_value():
    with pytest.raises(ValueError):
        ops.cofactor(0b1000, 0, 2, 2)


def test_remove_insert_variable_roundtrip():
    rng = random.Random(3)
    for _ in range(20):
        num_vars = rng.randint(2, 6)
        table = bits.random_table(num_vars - 1, rng)
        var = rng.randrange(num_vars)
        expanded = ops.insert_variable(table, var, num_vars)
        assert not depends_on(expanded, var, num_vars)
        assert ops.remove_variable(expanded, var, num_vars) == table


def test_flip_variable_involution_and_semantics():
    rng = random.Random(4)
    for _ in range(20):
        num_vars = rng.randint(1, 6)
        table = bits.random_table(num_vars, rng)
        var = rng.randrange(num_vars)
        flipped = ops.flip_variable(table, var, num_vars)
        assert ops.flip_variable(flipped, var, num_vars) == table
        for row in range(bits.num_bits(num_vars)):
            assert bits.bit_of(flipped, row) == bits.bit_of(table, row ^ (1 << var))


def test_swap_variables_semantics():
    # f = x0 on 2 vars; swapping x0,x1 gives x1
    assert ops.swap_variables(bits.projection(0, 2), 0, 1, 2) == bits.projection(1, 2)
    # swapping a variable with itself is the identity
    table = 0b0110
    assert ops.swap_variables(table, 1, 1, 2) == table


def test_swap_variables_involution():
    rng = random.Random(5)
    for _ in range(20):
        num_vars = rng.randint(2, 6)
        table = bits.random_table(num_vars, rng)
        a, b = rng.sample(range(num_vars), 2)
        swapped = ops.swap_variables(table, a, b, num_vars)
        assert ops.swap_variables(swapped, a, b, num_vars) == table


def test_xor_variable_into_semantics():
    # f = x0 (2 vars); substituting x0 <- x0 ^ x1 gives x0 ^ x1
    expected = bits.projection(0, 2) ^ bits.projection(1, 2)
    assert ops.xor_variable_into(bits.projection(0, 2), 0, 1, 2) == expected


def test_xor_variable_into_requires_distinct():
    with pytest.raises(ValueError):
        ops.xor_variable_into(0b1000, 1, 1, 2)


def test_xor_with_variable():
    table = 0b1000
    assert ops.xor_with_variable(table, 0, 2) == table ^ bits.projection(0, 2)


def test_apply_input_transform_identity():
    rng = random.Random(6)
    for num_vars in range(1, 6):
        table = bits.random_table(num_vars, rng)
        identity = [1 << i for i in range(num_vars)]
        assert ops.apply_input_transform(table, identity, 0, num_vars) == table


def test_apply_input_transform_matches_flip():
    rng = random.Random(7)
    num_vars = 4
    table = bits.random_table(num_vars, rng)
    identity = [1 << i for i in range(num_vars)]
    transformed = ops.apply_input_transform(table, identity, 0b0100, num_vars)
    assert transformed == ops.flip_variable(table, 2, num_vars)


def test_apply_output_affine():
    table = 0b1000
    result = ops.apply_output_affine(table, 0b01, 1, 2)
    expected = ops.negate(table ^ bits.projection(0, 2), 2)
    assert result == expected


def test_expand_table():
    table = 0b10  # f = x0 on 1 var
    assert ops.expand_table(table, 1, 2) == 0b1010
    with pytest.raises(ValueError):
        ops.expand_table(table, 2, 1)


def test_shrink_to_support():
    # 3-var function that only depends on x1
    table = bits.projection(1, 3)
    reduced, sup = ops.shrink_to_support(table, 3)
    assert sup == [1]
    assert reduced == 0b10  # x0 over 1 variable


@settings(max_examples=60, deadline=None)
@given(tables(4), st.integers(0, 3))
def test_shannon_expansion_property(table, var):
    """f == (~x & f0) | (x & f1) for every variable."""
    num_vars = 4
    f0 = ops.cofactor(table, var, 0, num_vars)
    f1 = ops.cofactor(table, var, 1, num_vars)
    proj = bits.projection(var, num_vars)
    mask = bits.table_mask(num_vars)
    reconstructed = ((proj ^ mask) & f0) | (proj & f1)
    assert reconstructed == table


@settings(max_examples=40, deadline=None)
@given(tables(5))
def test_support_matches_shrink(table):
    reduced, sup = ops.shrink_to_support(table, 5)
    assert sup == support(table, 5)
    assert reduced <= bits.table_mask(len(sup))
