"""Tests for plan insertion, cut rewriting and the optimisation flows."""

import random

import pytest

from repro.testing import full_adder_naive, random_xag
from repro.circuits.arithmetic import adder, comparator, full_adder
from repro.mc import McDatabase
from repro.rewriting import (
    CutRewriter,
    RewriteParams,
    insert_plan,
    one_round,
    optimize,
    paper_flow,
    size_optimize,
)
from repro.tt import random_table
from repro.xag import Xag, equivalent, output_truth_tables
from repro.xag.graph import lit_node


# ----------------------------------------------------------------------
# plan insertion
# ----------------------------------------------------------------------
def test_insert_plan_reproduces_arbitrary_functions():
    database = McDatabase()
    rng = random.Random(1)
    for _ in range(15):
        num_vars = rng.randint(2, 6)
        table = random_table(num_vars, rng)
        plan = database.plan_for(table, num_vars)

        xag = Xag()
        leaves = xag.create_pis(num_vars)
        before_ands = xag.num_ands
        output = insert_plan(xag, plan, leaves)
        xag.create_po(output, "f")
        assert output_truth_tables(xag)[0] == table
        # the affine correction never adds AND gates
        assert xag.num_ands - before_ands <= plan.num_ands


def test_insert_plan_checks_leaf_count():
    database = McDatabase()
    plan = database.plan_for(0xE8, 3)
    xag = Xag()
    leaves = xag.create_pis(2)
    with pytest.raises(ValueError):
        insert_plan(xag, plan, leaves)


# ----------------------------------------------------------------------
# single-round rewriting
# ----------------------------------------------------------------------
def test_full_adder_reaches_multiplicative_complexity_one():
    """The paper's running example (Fig. 1 → Fig. 2): 3 AND gates become 1."""
    fa = full_adder_naive()
    result = optimize(fa, params=RewriteParams(cut_size=3))
    assert equivalent(fa, result.final)
    assert result.final.num_ands == 1


def test_rewrite_round_statistics():
    fa = full_adder_naive()
    rewriter = CutRewriter(params=RewriteParams(cut_size=3))
    improved, stats = rewriter.rewrite(fa)
    assert stats.ands_before == 3
    assert stats.ands_after == improved.num_ands
    assert stats.verified is True
    assert stats.nodes_considered > 0
    assert stats.candidates_evaluated > 0
    assert stats.rewrites_applied >= 1
    assert 0.0 < stats.and_improvement <= 1.0


def test_rewriting_preserves_function_on_random_networks(rng):
    for seed in range(4):
        xag = random_xag(random.Random(seed), num_pis=6, num_gates=40)
        result = optimize(xag, params=RewriteParams(cut_size=4, cut_limit=8), max_rounds=2)
        assert equivalent(xag, result.final)
        assert result.final.num_ands <= xag.num_ands


def test_rewriting_never_increases_and_count(rng):
    for seed in range(10, 14):
        xag = random_xag(random.Random(seed), num_pis=5, num_gates=30, and_bias=0.7)
        rewriter = CutRewriter(params=RewriteParams(cut_size=4))
        improved, stats = rewriter.rewrite(xag)
        assert improved.num_ands <= xag.num_ands
        assert stats.verified


def test_invalid_objective_rejected():
    rewriter = CutRewriter(params=RewriteParams(objective="area"))
    with pytest.raises(ValueError):
        rewriter.rewrite(full_adder_naive())


def test_zero_gain_mode_reduces_gates_without_and_regression():
    xag = full_adder_naive()
    params = RewriteParams(cut_size=3, allow_zero_gain=True)
    result = optimize(xag, params=params)
    assert equivalent(xag, result.final)
    assert result.final.num_ands <= 1 + 0  # still reaches the optimum


def test_size_objective_reduces_total_gates():
    rng = random.Random(77)
    xag = random_xag(rng, num_pis=5, num_gates=45, and_bias=0.6)
    result = size_optimize(xag, max_rounds=2)
    assert equivalent(xag, result.final)
    assert result.final.num_gates <= xag.num_gates


# ----------------------------------------------------------------------
# flows
# ----------------------------------------------------------------------
def test_one_round_runs_exactly_one_round():
    fa = full_adder_naive()
    result = one_round(fa, params=RewriteParams(cut_size=3))
    assert result.num_rounds == 1


def test_optimize_converges():
    add = adder(8)
    result = optimize(add, params=RewriteParams(cut_size=4, cut_limit=8))
    assert result.converged or result.final.num_ands == 8
    assert equivalent(add, result.final)
    # per-bit carry majority should be reduced to a single AND
    assert result.final.num_ands == 8


def test_adder_reaches_known_optimum_32():
    """Paper §5.2: the 32-bit adder is optimised down to 32 AND gates (optimal)."""
    add = adder(32)
    result = optimize(add, params=RewriteParams(cut_size=6, cut_limit=12))
    assert result.final.num_ands == 32
    assert equivalent(add, result.final)


def test_comparator_improves():
    cmp_ = comparator(8, signed=False, strict=True)
    result = optimize(cmp_, params=RewriteParams(cut_size=4, cut_limit=8))
    assert equivalent(cmp_, result.final)
    assert result.final.num_ands < cmp_.num_ands


def test_paper_flow_structure():
    fa = full_adder(style="naive")
    flow = paper_flow(fa, name="full_adder", params=RewriteParams(cut_size=3))
    assert flow.name == "full_adder"
    assert flow.num_inputs == 3 and flow.num_outputs == 2
    assert flow.initial.num_ands == 3
    assert flow.after_one_round.num_ands <= flow.initial.num_ands
    assert flow.after_convergence.num_ands == 1
    assert flow.one_round_improvement <= flow.convergence_improvement
    assert flow.convergence_rounds >= 1
    assert flow.convergence_seconds >= flow.one_round_seconds


def test_paper_flow_with_size_baseline():
    fa = full_adder(style="naive")
    flow = paper_flow(fa, params=RewriteParams(cut_size=3), size_baseline=True)
    assert equivalent(fa, flow.after_convergence)


def test_flow_respects_max_rounds():
    add = adder(8)
    flow = paper_flow(add, params=RewriteParams(cut_size=4, cut_limit=6), max_rounds=1)
    assert flow.convergence_rounds <= 2


def test_shared_database_accumulates_recipes():
    database = McDatabase()
    optimize(full_adder_naive(), database=database, params=RewriteParams(cut_size=3))
    first = database.stats()["stored_recipes"]
    optimize(adder(4), database=database, params=RewriteParams(cut_size=4))
    assert database.stats()["stored_recipes"] >= first
