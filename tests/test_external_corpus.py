"""External corpus directories: loaders, rejection rules, engine plumbing.

A temporary directory of mixed-format netlists (Bristol, BLIF, serialised
JSON, plus a write-only Verilog file) stands in for a user-provided corpus;
the tests cover name sanitisation, deterministic ordering, the skip/error
policy for unreadable files, duplicate-stem detection through the registry,
and an end-to-end engine run over ``EngineConfig.corpus_dirs``.
"""

from __future__ import annotations

import json

import pytest

from repro.circuits import external_corpus, full_registry
from repro.circuits.external import LOADERS, case_name_for
from repro.engine.core import EngineConfig, available_cases, run_batch
from repro.io import write_blif, write_bristol
from repro.testing import assert_equivalent, full_adder_naive
from repro.xag.serialize import to_dict


@pytest.fixture
def corpus_dir(tmp_path):
    """One full adder in every readable format, plus a Verilog stray."""
    xag = full_adder_naive()
    (tmp_path / "fa_bristol.txt").write_text(write_bristol(xag))
    (tmp_path / "fa_blif.blif").write_text(write_blif(xag))
    (tmp_path / "fa_json.json").write_text(json.dumps(to_dict(xag)))
    (tmp_path / "notes.v").write_text("// write-only format\n")
    return tmp_path


def test_case_names_are_sanitised():
    assert case_name_for("adder 64 (v2).blif") == "adder_64_v2"
    assert case_name_for("SHA-256.txt") == "sha-256"
    assert case_name_for("§§§.json") == "unnamed"


def test_corpus_cases_load_and_match_the_source(corpus_dir):
    cases = external_corpus(corpus_dir)
    assert [case.name for case in cases] == \
        ["fa_blif", "fa_bristol", "fa_json"]  # sorted, .v skipped
    assert all(case.group == "external" for case in cases)
    reference = full_adder_naive()
    for case in cases:
        built = case.build(full_scale=False)
        assert built.name == case.name
        assert_equivalent(built, reference, context=case.name)


def test_every_registered_loader_suffix_was_exercised(corpus_dir):
    suffixes = {path.suffix for path in corpus_dir.iterdir()}
    assert set(LOADERS) <= suffixes | {".bristol"}  # .bristol == .txt loader


def test_unsupported_files_can_raise(corpus_dir):
    with pytest.raises(ValueError, match="Verilog is write-only"):
        external_corpus(corpus_dir, on_unsupported="error")
    with pytest.raises(ValueError, match="'skip' or 'error'"):
        external_corpus(corpus_dir, on_unsupported="maybe")


def test_missing_and_empty_directories_fail_loudly(tmp_path):
    with pytest.raises(ValueError, match="not a directory"):
        external_corpus(tmp_path / "nope")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ValueError, match="no readable circuit files"):
        external_corpus(empty)
    (empty / "readme.md").write_text("not a netlist")
    with pytest.raises(ValueError, match="no readable circuit files"):
        external_corpus(empty)


def test_duplicate_stems_are_rejected_by_the_registry(tmp_path):
    xag = full_adder_naive()
    (tmp_path / "adder.blif").write_text(write_blif(xag))
    (tmp_path / "adder.txt").write_text(write_bristol(xag))
    with pytest.raises(ValueError, match="duplicate benchmark name 'adder'"):
        full_registry(corpus_dirs=[tmp_path])


def test_duplicate_against_builtin_suite_is_rejected(tmp_path):
    (tmp_path / "sha256.blif").write_text(write_blif(full_adder_naive()))
    with pytest.raises(ValueError,
                       match="duplicate benchmark name 'sha256'"):
        full_registry(corpus_dirs=[tmp_path])


def test_available_cases_appends_corpus_blocks(corpus_dir):
    cases = available_cases(("epfl",), corpus_dirs=(str(corpus_dir),))
    names = [case.name for case in cases]
    assert names[-3:] == ["fa_blif", "fa_bristol", "fa_json"]
    corpus_only = available_cases(("corpus",))
    assert all(case.group in ("arithmetic-sweep", "control-sweep",
                              "crypto-full") for case in corpus_only)


def test_engine_runs_an_external_corpus(corpus_dir):
    config = EngineConfig(suites=("epfl",),
                          corpus_dirs=(str(corpus_dir),),
                          circuits=["fa_bristol", "fa_blif", "fa_json"],
                          max_rounds=1)
    batch = run_batch(config)
    assert not batch.failed
    assert len(batch.reports) == 3
    for report in batch.reports:
        assert report.error is None
        assert report.group == "external"
        assert report.verified
        assert report.ands_after <= report.ands_before
