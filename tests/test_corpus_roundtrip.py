"""Serialisation round-trips for every registered benchmark circuit.

Each case is built at default scale, written out and parsed back through
both text formats (BLIF and Bristol Fashion), and the reconstruction is
compared against the original on packed simulation words — so every circuit
the registry can name is guaranteed to survive the io layer, including the
Keccak permutation and the full-key-schedule AES (slow-marked).
"""

from __future__ import annotations

import pytest

from repro.circuits import full_registry
from repro.io import read_blif, read_bristol, write_blif, write_bristol
from repro.xag.equivalence import equivalence_stimulus
from repro.xag.simulate import simulate_words

_REGISTRY = full_registry()

CASES = [
    pytest.param(case, id=case.name,
                 marks=[pytest.mark.slow] if case.slow else [])
    for case in _REGISTRY
]


def _assert_same_function(original, rebuilt, context):
    assert rebuilt.num_pis == original.num_pis, context
    assert rebuilt.num_pos == original.num_pos, context
    words, mask, _ = equivalence_stimulus(original.num_pis,
                                          num_random_words=8)
    assert simulate_words(rebuilt, words, mask) == \
        simulate_words(original, words, mask), \
        f"{context}: PO words differ after the round-trip"


@pytest.fixture(scope="module")
def built_cases():
    """Each network is built once and shared by both format tests."""
    return {}


def _build(case, built_cases):
    if case.name not in built_cases:
        built_cases[case.name] = case.build(full_scale=False)
    return built_cases[case.name]


@pytest.mark.parametrize("case", CASES)
def test_blif_roundtrip(case, built_cases):
    xag = _build(case, built_cases)
    rebuilt = read_blif(write_blif(xag))
    _assert_same_function(xag, rebuilt, f"{case.name} via BLIF")


@pytest.mark.parametrize("case", CASES)
def test_bristol_roundtrip(case, built_cases):
    xag = _build(case, built_cases)
    rebuilt = read_bristol(write_bristol(xag))
    _assert_same_function(xag, rebuilt, f"{case.name} via Bristol")
