"""Tests for the Bristol Fashion, BLIF and Verilog interchange formats."""

import random

import pytest

from repro.testing import full_adder_naive, random_xag
from repro.circuits.arithmetic import adder
from repro.io import (
    load_bristol,
    read_blif,
    read_bristol,
    save_blif,
    save_bristol,
    load_blif,
    write_blif,
    write_bristol,
    write_verilog,
    save_verilog,
)
from repro.xag import Xag, equivalent


# ----------------------------------------------------------------------
# Bristol Fashion
# ----------------------------------------------------------------------
def test_bristol_roundtrip_full_adder():
    fa = full_adder_naive()
    text = write_bristol(fa, [1, 1, 1], [1, 1])
    rebuilt = read_bristol(text)
    assert rebuilt.num_pis == 3 and rebuilt.num_pos == 2
    assert equivalent(fa, rebuilt)


def test_bristol_roundtrip_random_networks(rng):
    for seed in range(3):
        xag = random_xag(random.Random(seed), num_pis=6, num_gates=30)
        rebuilt = read_bristol(write_bristol(xag))
        assert equivalent(xag, rebuilt)


def test_bristol_header_counts():
    fa = full_adder_naive()
    text = write_bristol(fa, [1, 1, 1], [1, 1])
    lines = [line for line in text.splitlines() if line.strip()]
    num_gates, num_wires = (int(token) for token in lines[0].split())
    assert num_gates == len(lines) - 3
    assert lines[1].split()[0] == "3"
    assert lines[2].split()[0] == "2"
    assert num_wires >= fa.num_pis + num_gates


def test_bristol_constant_outputs():
    xag = Xag()
    xag.create_pis(2)
    xag.create_po(xag.get_constant(True), "one")
    xag.create_po(xag.get_constant(False), "zero")
    rebuilt = read_bristol(write_bristol(xag))
    assert equivalent(xag, rebuilt)


def test_bristol_width_validation():
    fa = full_adder_naive()
    with pytest.raises(ValueError):
        write_bristol(fa, [2, 2], [1, 1])
    with pytest.raises(ValueError):
        write_bristol(fa, [1, 1, 1], [3])


def test_bristol_explicit_empty_widths_error_not_default():
    """``input_widths=[]`` must fail the coverage check, not silently fall
    back to the single-value default (regression: truthiness vs ``is None``)."""
    fa = full_adder_naive()
    with pytest.raises(ValueError, match="input widths"):
        write_bristol(fa, input_widths=[])
    with pytest.raises(ValueError, match="output widths"):
        write_bristol(fa, output_widths=[])
    # None still means "one value spanning all bits"
    header = write_bristol(fa, input_widths=None).splitlines()[1]
    assert header == "1 3"


def test_bristol_rejects_bad_input():
    with pytest.raises(ValueError):
        read_bristol("1 1")
    with pytest.raises(ValueError):
        read_bristol("1 4\n1 2\n1 1\n\n2 1 0 1 3 NAND\n")


def test_bristol_file_roundtrip(tmp_path):
    add = adder(4)
    path = tmp_path / "adder.bristol"
    save_bristol(add, path, [4, 4], [4, 1])
    rebuilt = load_bristol(path)
    assert equivalent(add, rebuilt)


def test_bristol_mand_gate_support():
    text = "\n".join([
        "1 6",
        "1 4",
        "1 2",
        "",
        "4 2 0 1 2 3 4 5 MAND",
    ]) + "\n"
    xag = read_bristol(text)
    assert xag.num_pos == 2
    assert xag.num_ands == 2


# ----------------------------------------------------------------------
# BLIF
# ----------------------------------------------------------------------
def test_blif_roundtrip_full_adder():
    fa = full_adder_naive()
    rebuilt = read_blif(write_blif(fa))
    assert equivalent(fa, rebuilt)
    assert rebuilt.pi_names() == fa.pi_names()
    assert rebuilt.po_names() == fa.po_names()


def test_blif_roundtrip_random_networks(rng):
    for seed in range(3):
        xag = random_xag(random.Random(seed + 10), num_pis=5, num_gates=25)
        rebuilt = read_blif(write_blif(xag))
        assert equivalent(xag, rebuilt)


def test_blif_file_roundtrip(tmp_path):
    add = adder(4)
    path = tmp_path / "adder.blif"
    save_blif(add, path)
    assert equivalent(add, load_blif(path))


def test_blif_constant_output():
    xag = Xag()
    xag.create_pis(1)
    xag.create_po(xag.get_constant(False), "zero")
    rebuilt = read_blif(write_blif(xag))
    assert equivalent(xag, rebuilt)


def test_blif_model_name():
    fa = full_adder_naive()
    text = write_blif(fa, model_name="my_adder")
    assert ".model my_adder" in text
    # an explicit name always wins; only None falls back to the network name
    assert write_blif(fa, model_name=None).startswith(f".model {fa.name}")


def _gate_with_constant_fanin():
    """Network with a live gate reading node 0 (bypasses constant folding).

    The public constructors fold constant fan-ins away, but external
    frontends (and the low-level node array) can legitimately describe such
    gates; the BLIF writer must still emit valid text for them.
    """
    from repro.xag.graph import NodeKind, literal

    xag = Xag()
    a, b = xag.create_pis(2)
    gate = xag._new_node(NodeKind.XOR, xag.get_constant(True), a)
    xag.create_po(literal(gate), "inv")
    xag.create_po(xag.create_and(literal(gate), b), "gated")
    return xag


def test_blif_declares_const0_for_gate_fanins():
    """Regression: a gate (not just a PO) reading node 0 must pull in the
    ``.names const0`` driver, otherwise the emitted BLIF references an
    undeclared signal."""
    xag = _gate_with_constant_fanin()
    text = write_blif(xag)
    assert ".names const0" in text
    rebuilt = read_blif(text)
    assert equivalent(xag, rebuilt)


def test_blif_reader_resolves_out_of_order_definitions():
    """Legal BLIF may define a cover before its sources; the reader must
    resolve covers in dependency order instead of raising KeyError."""
    text = "\n".join([
        ".model ooo",
        ".inputs a b",
        ".outputs y",
        ".names mid a y",   # reads `mid` before it is defined
        "11 1",
        ".names a b mid",
        "01 1",
        "10 1",
        ".end",
    ])
    xag = read_blif(text)
    assert xag.num_pis == 2 and xag.num_pos == 1
    reference = Xag()
    a, b = reference.create_pis(2)
    reference.create_po(reference.create_and(reference.create_xor(a, b), a), "y")
    assert equivalent(reference, xag)


def test_blif_reader_rejects_undefined_signals():
    text = "\n".join([
        ".model broken",
        ".inputs a",
        ".outputs y",
        ".names a ghost y",
        "11 1",
        ".end",
    ])
    with pytest.raises(ValueError, match="undefined signal.*ghost"):
        read_blif(text)
    with pytest.raises(ValueError, match="output 'y' is never defined"):
        read_blif(".model m\n.inputs a\n.outputs y\n.end\n")


def test_blif_reader_rejects_cyclic_covers():
    text = "\n".join([
        ".model loop",
        ".inputs a",
        ".outputs y",
        ".names y a u",
        "11 1",
        ".names u a y",
        "11 1",
        ".end",
    ])
    with pytest.raises(ValueError, match="combinational cycle"):
        read_blif(text)


# ----------------------------------------------------------------------
# Verilog
# ----------------------------------------------------------------------
def test_verilog_writer_structure(tmp_path):
    fa = full_adder_naive()
    text = write_verilog(fa)
    assert text.startswith("module full_adder(")
    assert text.count("input ") == 3
    assert text.count("output ") == 2
    assert "endmodule" in text
    assert "&" in text and "^" in text
    path = tmp_path / "fa.v"
    save_verilog(fa, path)
    assert path.read_text() == text


def test_verilog_sanitises_names():
    xag = Xag()
    a = xag.create_pi("1bad-name")
    xag.create_po(a, "out put")
    text = write_verilog(xag, module_name="top")
    assert "1bad-name" not in text
    assert "s_1bad_name" in text


def test_verilog_deduplicates_colliding_port_names():
    xag = Xag()
    a = xag.create_pi("a-b")
    b = xag.create_pi("a_b")       # sanitises to the same identifier
    c = xag.create_pi("a.b")       # and so does this one
    xag.create_po(xag.create_and(a, xag.create_xor(b, c)), "a b")
    text = write_verilog(xag, module_name="top")
    header = text.splitlines()[0]
    ports = header[header.index("(") + 1:header.index(")")].split(", ")
    assert len(ports) == len(set(ports)) == 4
    assert "a_b" in ports and "a_b_2" in ports and "a_b_3" in ports


def test_verilog_ports_never_collide_with_wire_names():
    xag = Xag()
    a = xag.create_pi("x")
    b = xag.create_pi("y")
    and_node = xag.create_and(a, b) >> 1
    xag.create_pi(f"n{and_node}")   # would alias the generated wire name
    xag.create_po(xag.create_and(a, b), "out")
    text = write_verilog(xag)
    assert text.count(f"wire n{and_node};") == 1
    assert f"input n{and_node}_2;" in text


def test_verilog_rejects_empty_port_names():
    import pytest

    xag = Xag()
    a = xag.create_pi("")
    xag.create_po(a, "out")
    with pytest.raises(ValueError):
        write_verilog(xag)
