"""Canonical structural hashing (:mod:`repro.xag.structhash`).

The hash is the identity every cache layer keys on (cone tables, warm-start
bundles, the engine's whole-circuit result cache), so these tests pin its
contract directly: strash-style canonicalisation of complements and sibling
order, invariance under renaming / creation order / serialisation, leaf
relativity of cone hashes, and sensitivity to everything that *does* change
the computed functions (PI roles, PO order, output complements).
"""

import os
import random
import subprocess
import sys
from pathlib import Path

import repro
from repro.cuts.enumeration import cut_cone
from repro.testing import random_xag
from repro.testing.diff import _permuted_copy, check_hash_consistency
from repro.xag import cone_hash, graph_hash, node_hashes
from repro.xag.graph import Xag
from repro.xag.serialize import from_dict, to_dict
from repro.xag.structhash import CONST_HASH, StructHashCache, leaf_hash, pi_hash


def _single_output(build):
    """One-PO network built by ``build(xag, a, b, c)`` over three PIs."""
    xag = Xag()
    a, b, c = xag.create_pi("a"), xag.create_pi("b"), xag.create_pi("c")
    xag.create_po(build(xag, a, b, c), "f")
    return xag


# ----------------------------------------------------------------------
# canonicalisation
# ----------------------------------------------------------------------
def test_hashes_are_stable_128_bit_values():
    assert 0 < CONST_HASH < (1 << 128)
    assert pi_hash(0) != pi_hash(1)
    assert leaf_hash(0) != leaf_hash(1)
    assert pi_hash(0) != leaf_hash(0)  # domain tags separate the roles
    # recomputing yields the identical constant (pure function of the slot)
    assert pi_hash(3) == pi_hash(3)


def test_graph_hash_is_deterministic_across_processes():
    """BLAKE2b, not ``hash()``: the value must survive a fresh interpreter
    with a different ``PYTHONHASHSEED`` (bundles are shared across runs)."""
    program = (
        "from repro.xag.graph import Xag\n"
        "from repro.xag.structhash import graph_hash\n"
        "xag = Xag()\n"
        "a, b = xag.create_pi('a'), xag.create_pi('b')\n"
        "xag.create_po(xag.create_and(xag.create_xor(a, b), a ^ 1), 'f')\n"
        "print(format(graph_hash(xag), 'x'))\n")
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    runs = {
        subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONHASHSEED": seed, "PYTHONPATH": src_dir},
        ).stdout.strip()
        for seed in ("0", "12345")
    }
    assert len(runs) == 1

    xag = Xag()
    a, b = xag.create_pi("a"), xag.create_pi("b")
    xag.create_po(xag.create_and(xag.create_xor(a, b), a ^ 1), "f")
    assert runs == {format(graph_hash(xag), "x")}


def test_and_hash_normalises_sibling_order():
    left = _single_output(lambda x, a, b, c: x.create_and(a ^ 1, b))
    right = _single_output(lambda x, a, b, c: x.create_and(b, a ^ 1))
    assert graph_hash(left) == graph_hash(right)


def test_and_hash_keeps_complements_on_children():
    plain = _single_output(lambda x, a, b, c: x.create_and(a, b))
    negated = _single_output(lambda x, a, b, c: x.create_and(a ^ 1, b))
    other = _single_output(lambda x, a, b, c: x.create_and(a, b ^ 1))
    assert graph_hash(plain) != graph_hash(negated)
    assert graph_hash(negated) != graph_hash(other)


def test_xor_hash_folds_complements_to_parity():
    # a ^ !b == !a ^ b == !(a ^ b): all three are one canonical structure
    # with an output parity — strash stores them identically, so must we.
    variants = [
        _single_output(lambda x, a, b, c: x.create_xor(a ^ 1, b)),
        _single_output(lambda x, a, b, c: x.create_xor(a, b ^ 1)),
        _single_output(lambda x, a, b, c: x.create_xor(a, b) ^ 1),
    ]
    hashes = {graph_hash(xag) for xag in variants}
    assert len(hashes) == 1
    even = _single_output(lambda x, a, b, c: x.create_xor(a, b))
    assert graph_hash(even) not in hashes  # parity is part of the hash


# ----------------------------------------------------------------------
# graph-hash invariance and sensitivity
# ----------------------------------------------------------------------
def test_graph_hash_ignores_names_and_creation_order():
    for seed in range(10):
        rng = random.Random(seed)
        xag = random_xag(rng, num_pis=5, num_gates=35, num_pos=3)
        assert check_hash_consistency(xag, random.Random(seed ^ 7)) == []


def test_graph_hash_tracks_pi_roles_not_pi_nodes():
    # f = a AND (b XOR c) versus the same shape with the roles of the
    # first two inputs swapped: different functions, different hashes.
    f = _single_output(lambda x, a, b, c: x.create_and(a, x.create_xor(b, c)))
    g = _single_output(lambda x, a, b, c: x.create_and(b, x.create_xor(a, c)))
    assert graph_hash(f) != graph_hash(g)


def test_graph_hash_sensitive_to_po_order_and_complement():
    def two_pos(order):
        xag = Xag()
        a, b = xag.create_pi("a"), xag.create_pi("b")
        lits = (xag.create_and(a, b), xag.create_xor(a, b))
        for index in order:
            xag.create_po(lits[index], f"y{index}")
        return xag

    assert graph_hash(two_pos((0, 1))) != graph_hash(two_pos((1, 0)))

    plain = _single_output(lambda x, a, b, c: x.create_and(a, b))
    negated = _single_output(lambda x, a, b, c: x.create_and(a, b) ^ 1)
    assert graph_hash(plain) != graph_hash(negated)


def test_graph_hash_sensitive_to_unused_pi_count():
    narrow = Xag()
    a = narrow.create_pi("a")
    narrow.create_po(a, "y")
    wide = Xag()
    a = wide.create_pi("a")
    wide.create_pi("unused")
    wide.create_po(a, "y")
    assert graph_hash(narrow) != graph_hash(wide)


def test_graph_hash_survives_serialisation_round_trip():
    for seed in range(5):
        xag = random_xag(random.Random(100 + seed), num_pis=4, num_gates=25)
        assert graph_hash(from_dict(to_dict(xag))) == graph_hash(xag)


def test_permuted_copy_hashes_equal_with_changed_node_indices():
    xag = random_xag(random.Random(42), num_pis=5, num_gates=40, num_pos=2)
    copy = _permuted_copy(xag, random.Random(7))
    assert graph_hash(copy) == graph_hash(xag)
    # the permutation genuinely moved nodes (otherwise the test is vacuous)
    assert ([copy.fanins(g) for g in copy.gates()]
            != [xag.fanins(g) for g in xag.gates()])


# ----------------------------------------------------------------------
# cone hashes
# ----------------------------------------------------------------------
def test_cone_hash_is_leaf_relative_across_networks():
    # the same cone structure rooted over different leaf nodes, buried in
    # different networks, must produce the identical content address.
    def cone_over(xag, a, b):
        return xag.create_and(xag.create_xor(a, b), a)

    host_a = Xag()
    a0, a1 = host_a.create_pi("x0"), host_a.create_pi("x1")
    root_a = cone_over(host_a, a0, a1)
    host_a.create_po(root_a, "f")
    a_leaves = (a0 >> 1, a1 >> 1)

    host_b = Xag()
    pis = [host_b.create_pi(f"p{i}") for i in range(4)]
    # anchor the cone on derived signals so the leaf *node indices* differ
    u = host_b.create_xor(pis[2], pis[3])
    v = host_b.create_and(pis[0], pis[1])
    root_b = cone_over(host_b, u, v)
    host_b.create_po(root_b, "g")
    b_leaves = (u >> 1, v >> 1)

    assert a_leaves != b_leaves
    assert (cone_hash(host_a, root_a >> 1, a_leaves)
            == cone_hash(host_b, root_b >> 1, b_leaves))


def test_cone_hash_depends_on_leaf_order_and_structure():
    xag = Xag()
    a, b, c = (xag.create_pi(n) for n in "abc")
    root = xag.create_and(xag.create_xor(a, b), c)
    xag.create_po(root, "f")
    leaves = (a >> 1, b >> 1, c >> 1)
    reference = cone_hash(xag, root >> 1, leaves)
    # leaf order defines the variable numbering: a rotation is a different
    # function of the leaf vector, hence a different address
    rotated = (c >> 1, a >> 1, b >> 1)
    assert cone_hash(xag, root >> 1, rotated) != reference
    # a structurally different cone over the same leaves differs too
    other = xag.create_and(xag.create_and(a, b), c)
    xag.create_po(other, "g")
    assert cone_hash(xag, other >> 1, leaves) != reference


def test_cone_hash_accepts_precomputed_interior():
    xag = random_xag(random.Random(5), num_pis=4, num_gates=20)
    gate = next(iter(xag.gates()))
    leaves = tuple(sorted(p >> 1 for p in xag.pi_literals()))
    interior = cut_cone(xag, gate, leaves)
    assert (cone_hash(xag, gate, leaves, interior)
            == cone_hash(xag, gate, leaves))


# ----------------------------------------------------------------------
# maintained hashes
# ----------------------------------------------------------------------
def test_tracker_graph_hash_matches_free_function():
    xag = random_xag(random.Random(9), num_pis=5, num_gates=30, num_pos=2)
    cache = StructHashCache()
    tracker = cache.tracker(xag)
    assert tracker.graph_hash() == graph_hash(xag)
    maintained = tracker.hashes()
    fresh = node_hashes(xag)
    for node in xag.topological_order():
        assert maintained[node] == fresh[node]
    # rebinding to another network replaces the tracker
    other = random_xag(random.Random(10), num_pis=4, num_gates=15)
    assert cache.tracker(other).xag is other
    assert cache.tracker(other) is cache.tracker(other)
