"""Tests for affine operations, transforms, classification and the cache."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.affine import (
    AffineClassifier,
    AffineOp,
    AffineTransform,
    ClassificationCache,
    apply_ops,
)
from repro.tt import bits, random_table
from repro.tt.spectrum import spectrum_signature

OP_KINDS = ["swap", "flip_input", "flip_output", "translate", "xor_output"]


def random_op(rng: random.Random, num_vars: int) -> AffineOp:
    kind = rng.choice(OP_KINDS)
    a = rng.randrange(num_vars)
    b = rng.randrange(num_vars)
    while b == a and num_vars > 1:
        b = rng.randrange(num_vars)
    return AffineOp(kind, a, b)


# ----------------------------------------------------------------------
# elementary operations
# ----------------------------------------------------------------------
def test_ops_are_involutions():
    rng = random.Random(1)
    for _ in range(40):
        num_vars = rng.randint(2, 6)
        table = random_table(num_vars, rng)
        op = random_op(rng, num_vars)
        assert op.apply_to_table(op.apply_to_table(table, num_vars), num_vars) == table


def test_ops_preserve_spectrum_signature():
    rng = random.Random(2)
    for _ in range(30):
        num_vars = rng.randint(2, 5)
        table = random_table(num_vars, rng)
        op = random_op(rng, num_vars)
        assert spectrum_signature(op.apply_to_table(table, num_vars), num_vars) == \
            spectrum_signature(table, num_vars)


def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        AffineOp("rotate", 0, 1).apply_to_table(0b1000, 2)
    transform = AffineTransform.identity(2)
    with pytest.raises(ValueError):
        transform.apply_op(AffineOp("rotate", 0, 1))


def test_op_str_rendering():
    assert "x0" in str(AffineOp("flip_input", 0))
    assert "<->" in str(AffineOp("swap", 0, 1))
    assert str(AffineOp("flip_output"))


def test_example_2_3_of_the_paper():
    """<x1 x2 x3> is affine-equivalent to the 2-input AND (paper Example 2.3)."""
    majority = 0xE8
    and_gate = 0x88  # x0 & x1 as a 3-variable function (x2 is a don't care)
    ops = [
        AffineOp("flip_input", 1),
        AffineOp("translate", 1, 2),
        AffineOp("translate", 0, 1),
        AffineOp("xor_output", 0),
    ]
    assert apply_ops(and_gate, 3, ops) == majority


# ----------------------------------------------------------------------
# composite transform
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.integers(2, 6), st.integers(min_value=0, max_value=2**30))
def test_transform_tracks_op_sequences(num_vars, seed):
    rnd = random.Random(seed)
    table = random_table(num_vars, rnd)
    transform = AffineTransform.identity(num_vars)
    current = table
    for _ in range(8):
        op = random_op(rnd, num_vars)
        current = op.apply_to_table(current, num_vars)
        transform.apply_op(op)
    assert transform.apply_to_table(table) == current
    inverse = transform.inverse()
    assert inverse.apply_to_table(current) == table
    # decomposition into elementary ops reproduces the same function
    assert apply_ops(table, num_vars, transform.to_ops()) == current


def test_identity_transform():
    transform = AffineTransform.identity(4)
    assert transform.is_identity()
    assert transform.to_ops() == []
    table = 0xBEEF
    assert transform.apply_to_table(table) == table


def test_transform_copy_is_independent():
    transform = AffineTransform.identity(3)
    clone = transform.copy()
    clone.apply_op(AffineOp("flip_output"))
    assert transform.is_identity()
    assert not clone.is_identity()


def test_inverse_of_singular_matrix_rejected():
    transform = AffineTransform(2, matrix=[1, 1])
    with pytest.raises(ValueError):
        transform.inverse()


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
def test_three_variable_classification_is_exact():
    """All 256 3-variable functions collapse into exactly 3 affine classes."""
    classifier = AffineClassifier()
    representatives = {classifier.classify(table, 3).representative for table in range(256)}
    assert len(representatives) == 3


def test_two_variable_classification_is_exact():
    classifier = AffineClassifier()
    representatives = {classifier.classify(table, 2).representative for table in range(16)}
    assert len(representatives) == 2  # affine functions and the AND class


def test_classification_transform_is_always_valid():
    classifier = AffineClassifier()
    rng = random.Random(3)
    for _ in range(25):
        num_vars = rng.randint(2, 6)
        table = random_table(num_vars, rng)
        result = classifier.classify(table, num_vars)
        assert result.verify()
        assert apply_ops(table, num_vars, result.ops) == result.representative
        assert spectrum_signature(result.representative, num_vars) == \
            spectrum_signature(table, num_vars)


def test_classification_of_named_functions():
    classifier = AffineClassifier()
    majority = classifier.classify(0xE8, 3)
    and2 = classifier.classify(0x88, 3)
    assert majority.representative == and2.representative
    assert majority.method == "exhaustive"


def test_spectral_classification_of_degree_two_functions():
    """Equivalent degree-2 functions keep their invariants through classification.

    The greedy spectral canonisation is not guaranteed to be perfectly
    canonical in the presence of spectrum ties (bent functions are the extreme
    case), so the hard guarantees checked here are the ones the rewriting
    algorithm relies on: the transform is valid, the spectrum signature is
    preserved, and the representative has the same multiplicative complexity.
    """
    from repro.mc import McSynthesizer
    from repro.tt.anf import from_anf

    classifier = AffineClassifier()
    synthesizer = McSynthesizer()
    inner_product = from_anf((1 << 0b0011) | (1 << 0b1100), 4)
    rotated = from_anf((1 << 0b0101) | (1 << 0b1010), 4)
    first = classifier.classify(inner_product, 4)
    second = classifier.classify(rotated, 4)
    assert spectrum_signature(first.representative, 4) == \
        spectrum_signature(second.representative, 4)
    assert synthesizer.upper_bound(first.representative, 4) == \
        synthesizer.upper_bound(second.representative, 4) == 2


def test_classifier_rejects_negative_arity():
    with pytest.raises(ValueError):
        AffineClassifier().classify(0, -1)


def test_classification_constant_functions():
    classifier = AffineClassifier()
    zero = classifier.classify(0, 4)
    one = classifier.classify(bits.table_mask(4), 4)
    assert zero.representative == one.representative == 0


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def test_transform_dict_round_trip():
    rng = random.Random(7)
    for num_vars in (2, 3, 4, 6):
        transform = AffineTransform(num_vars)
        for _ in range(8):
            kind = rng.choice(OP_KINDS)
            a, b = rng.sample(range(num_vars), 2) if num_vars >= 2 else (0, 0)
            transform.apply_op(AffineOp(kind, a, b))
        rebuilt = AffineTransform.from_dict(transform.to_dict())
        table = random_table(num_vars, rng)
        assert rebuilt.apply_to_table(table) == transform.apply_to_table(table)
        assert rebuilt.num_vars == transform.num_vars


def test_transform_from_dict_rejects_malformed_payloads():
    with pytest.raises(ValueError):
        AffineTransform.from_dict({"num_vars": 2})          # missing keys
    with pytest.raises(ValueError):
        AffineTransform.from_dict({"num_vars": 3, "matrix": [1, 2], "offset": 0,
                                   "output_linear": 0, "output_const": 0})


def test_classification_cache_payload_round_trip():
    cache = ClassificationCache()
    rng = random.Random(11)
    for _ in range(6):
        num_vars = rng.randint(2, 4)
        cache.classify(random_table(num_vars, rng), num_vars)

    restored = ClassificationCache()
    installed = restored.install_payload(cache.to_payload())
    assert installed == len(cache)
    for key, entry in cache._entries.items():
        twin = restored.peek(*key)
        assert twin is not None
        assert twin.representative == entry.representative
        assert twin.verify()
        # the elementary-op view is rebuilt from the stored closed form
        assert apply_ops(twin.table, twin.num_vars, twin.ops) == twin.representative
    # peek never touches the statistics
    assert restored.hits == 0 and restored.misses == 0


def test_classification_cache_install_rejects_corrupt_entry():
    cache = ClassificationCache()
    cache.classify(0xE8, 3)
    payload = cache.to_payload()
    payload[0]["table"] ^= 0x55
    with pytest.raises(ValueError, match="corrupt"):
        ClassificationCache().install_payload(payload)


def test_classification_cache_hits():
    cache = ClassificationCache()
    table = 0xE8
    first = cache.classify(table, 3)
    second = cache.classify(table, 3)
    assert first is second
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.hit_rate == 0.0
