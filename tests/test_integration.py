"""End-to-end integration tests reproducing the paper's headline behaviours."""

import pytest

from repro.circuits.arithmetic import adder, comparator, full_adder
from repro.circuits.crypto.aes import aes128
from repro.circuits.crypto.md5 import md5_block
from repro.mc import McDatabase
from repro.rewriting import RewriteParams, optimize, paper_flow
from repro.xag import equivalent, multiplicative_depth


def test_fig2_full_adder_story():
    """Fig. 1 → Fig. 2: the full adder ends with multiplicative complexity 1."""
    fa = full_adder(style="naive")
    flow = paper_flow(fa, params=RewriteParams(cut_size=3))
    assert flow.initial.num_ands == 3
    assert flow.after_convergence.num_ands == 1
    assert equivalent(fa, flow.after_convergence)


def test_table2_32bit_adder_reaches_known_optimum():
    """Table 2: the 32-bit adder is optimised down to 32 AND gates."""
    add = adder(32)
    result = optimize(add, params=RewriteParams(cut_size=6, cut_limit=12))
    assert result.final.num_ands == 32
    assert equivalent(add, result.final)


def test_table2_comparator_improves_like_paper():
    """Table 2 comparators: ~25 % AND reduction territory (we reach >= 20 %)."""
    cmp_ = comparator(16, signed=False, strict=True)
    result = optimize(cmp_, params=RewriteParams(cut_size=6, cut_limit=8))
    assert equivalent(cmp_, result.final)
    assert result.final.num_ands <= 0.8 * cmp_.num_ands


def test_table2_aes_shows_no_improvement():
    """Table 2: AES is already at (or very near) its multiplicative complexity."""
    aes = aes128(expanded_key_inputs=True, num_rounds=1)
    result = optimize(aes, params=RewriteParams(cut_size=4, cut_limit=6, verify=False),
                      max_rounds=1)
    reduction = 1.0 - result.final.num_ands / aes.num_ands
    assert reduction < 0.05


@pytest.mark.slow
def test_table2_md5_improves_substantially():
    """Table 2: MD5 loses the majority of its AND gates (paper: 58 % in one round)."""
    md5 = md5_block(num_steps=4)
    result = optimize(md5, params=RewriteParams(cut_size=6, cut_limit=8, verify=False),
                      max_rounds=2)
    reduction = 1.0 - result.final.num_ands / md5.num_ands
    assert reduction > 0.4


def test_multiplicative_depth_does_not_explode():
    """FHE side metric: optimisation should not blow up the AND depth."""
    add = adder(16)
    result = optimize(add, params=RewriteParams(cut_size=6, cut_limit=8))
    assert multiplicative_depth(result.final) <= multiplicative_depth(add) + 4


def test_database_reuse_across_benchmarks_increases_hit_rate():
    database = McDatabase()
    optimize(adder(8), database=database, params=RewriteParams(cut_size=4))
    first_hits = database.classification_cache.hits
    optimize(adder(12), database=database, params=RewriteParams(cut_size=4))
    assert database.classification_cache.hits > first_hits
    assert database.classification_cache.hit_rate > 0.3
