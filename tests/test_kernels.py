"""Cross-backend parity of the kernel layer (:mod:`repro.kernels`).

Every test runs the same computation on the pure-Python reference backend
and on the numpy backend and requires bit-exact agreement — packed
simulation words, cone truth tables, classifier transforms, equivalence
verdicts and the (ANDs, depth, rounds) triples of whole optimisation runs.
The backends are allowed to differ in speed only.

The numpy-specific tests skip cleanly when numpy is not importable (CI runs
a dedicated no-numpy leg); the python reference paths are covered by the
rest of the suite either way.
"""

import random

import pytest

from repro import kernels
from repro.affine.classify import AffineClassifier
from repro.cuts.cache import _simulate_cone
from repro.cuts.enumeration import cut_cone, enumerate_cuts
from repro.engine import EngineConfig
from repro.engine.core import run_batch, select_cases
from repro.rewriting import RewriteParams, optimize
from repro.testing import random_xag
from repro.tt.bits import random_table, table_mask
from repro.tt.operations import (apply_input_transform, flip_variable,
                                 swap_variables, translate_rows)
from repro.tt.spectrum import table_from_spectrum, walsh_spectrum
from repro.xag import BitSimulator, Xag, equivalent, multiplicative_depth
from repro.xag.bitsim import SimulationCache
from repro.xag.equivalence import equivalence_stimulus
from repro.xag.simulate import node_values

requires_numpy = pytest.mark.skipif(not kernels.numpy_available(),
                                    reason="numpy backend not importable")


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(ValueError):
        kernels.resolve_backend("fortran")
    assert kernels.resolve_backend("python") == "python"


def test_python_backend_is_always_available():
    assert "python" in kernels.available_backends()
    with kernels.use_backend("python") as backend:
        assert not backend.accelerated
        assert kernels.backend_name() == "python"


@requires_numpy
def test_auto_resolves_to_numpy_when_available():
    assert kernels.resolve_backend("auto") == "numpy"
    with kernels.use_backend("numpy") as backend:
        assert backend.accelerated
        assert kernels.backend_name() == "numpy"


def test_auto_keeps_a_forced_backend():
    # "auto" means "don't change anything": a REPRO_BACKEND / set_backend
    # choice survives engine runs that pass the default backend="auto".
    with kernels.use_backend("python"):
        assert kernels.resolve_backend("auto") == "python"


# ----------------------------------------------------------------------
# truth-table kernels
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("num_vars", range(0, 9))
def test_walsh_spectrum_parity(num_vars):
    rng = random.Random(100 + num_vars)
    numpy_backend = kernels.set_backend("numpy")
    try:
        for _ in range(10):
            table = random_table(num_vars, rng)
            with kernels.use_backend("python"):
                reference = walsh_spectrum(table, num_vars)
            assert numpy_backend.walsh_spectrum(table, num_vars) == reference
            # the inverse transform must round-trip on both backends
            assert numpy_backend.table_from_spectrum(reference,
                                                     num_vars) == table
            with kernels.use_backend("python"):
                assert table_from_spectrum(reference, num_vars) == table
    finally:
        kernels.set_backend("auto")


@requires_numpy
@pytest.mark.parametrize("num_vars", [7, 8, 10])
def test_variable_op_parity(num_vars):
    """Wide tables dispatch to the numpy word kernels; results must match."""
    rng = random.Random(200 + num_vars)
    for _ in range(10):
        table = random_table(num_vars, rng)
        var_a = rng.randrange(num_vars)
        var_b = rng.randrange(num_vars)
        delta = rng.randrange(1 << num_vars)
        with kernels.use_backend("python"):
            reference = (flip_variable(table, var_a, num_vars),
                         translate_rows(table, delta, num_vars),
                         swap_variables(table, var_a, var_b, num_vars))
        with kernels.use_backend("numpy"):
            accelerated = (flip_variable(table, var_a, num_vars),
                           translate_rows(table, delta, num_vars),
                           swap_variables(table, var_a, var_b, num_vars))
        assert accelerated == reference


@requires_numpy
@pytest.mark.parametrize("num_vars", [2, 3, 4, 5, 6])
def test_apply_input_transform_parity(num_vars):
    from repro import gf2

    rng = random.Random(300 + num_vars)
    backend = kernels.set_backend("numpy")
    try:
        for _ in range(10):
            table = random_table(num_vars, rng)
            while True:
                matrix = [rng.randrange(1, 1 << num_vars)
                          for _ in range(num_vars)]
                if gf2.rank(list(matrix)) == num_vars:
                    break
            offset = rng.randrange(1 << num_vars)
            with kernels.use_backend("python"):
                reference = apply_input_transform(table, matrix, offset,
                                                  num_vars)
            assert backend.apply_input_transform(table, matrix, offset,
                                                 num_vars) == reference
    finally:
        kernels.set_backend("auto")


# ----------------------------------------------------------------------
# batched cone simulation
# ----------------------------------------------------------------------
@requires_numpy
def test_simulate_cones_matches_per_cone_reference():
    backend = kernels.set_backend("numpy")
    try:
        for seed in range(6):
            xag = random_xag(random.Random(seed), num_pis=6, num_gates=50)
            requests = []
            expected = []
            for node, cuts in enumerate_cuts(xag).items():
                for cut in cuts:
                    interior = cut_cone(xag, cut.root, cut.leaves)
                    requests.append((cut.root, cut.leaves, interior))
                    expected.append(_simulate_cone(xag, cut.root, cut.leaves,
                                                   interior))
            assert backend.simulate_cones(xag, requests) == expected
    finally:
        kernels.set_backend("auto")


# ----------------------------------------------------------------------
# incremental simulator: python words vs numpy store
# ----------------------------------------------------------------------
def _random_substitutions(xag, rng, count):
    """Apply ``count`` random acyclic substitutions; deterministic per rng."""
    applied = 0
    for _ in range(count * 4):
        if applied >= count:
            break
        gates = sorted(node for node in xag.topological_order()
                       if xag.is_gate(node))
        if not gates:
            break
        root = gates[rng.randrange(len(gates))]
        blocked = xag.transitive_fanout([root])
        blocked.add(root)
        pool = sorted(node for node in xag.topological_order()
                      if node not in blocked)
        if not pool:
            continue
        target = pool[rng.randrange(len(pool))]
        xag.substitute_node(root, (target << 1) | rng.randrange(2))
        applied += 1


def _simulator_trace(backend_name, seed):
    """Packed words + counters after a scripted mutate/rollback sequence."""
    with kernels.use_backend(backend_name):
        rng = random.Random(seed)
        xag = random_xag(random.Random(seed), num_pis=6, num_gates=40)
        words, mask, _ = equivalence_stimulus(xag.num_pis)
        sim = BitSimulator(xag, words, mask)
        trace = [sim.po_words()]

        _random_substitutions(xag, rng, 3)
        trace.append(sim.po_words())

        # speculative growth: checkpoint, append, query, roll back
        checkpoint = xag.checkpoint()
        lits = [node << 1 for node in xag.pis()]
        extra = xag.create_and(lits[0], xag.create_xor(lits[1], lits[2]))
        trace.append(sim.literal_value(extra))
        xag.rollback(checkpoint)
        trace.append(sim.po_words())

        _random_substitutions(xag, rng, 2)
        live = [node for node in xag.topological_order()]
        values = sim.values()
        trace.append([values[node] for node in live])
        reference = node_values(xag, words, mask)
        assert [values[node] for node in live] == \
            [reference[node] for node in live]
        trace.append((sim.full_updates, sim.incremental_updates))
    return trace


@requires_numpy
@pytest.mark.parametrize("seed", range(8))
def test_bit_simulator_parity_under_mutations(seed):
    """Words, PO values and update counters match across backends."""
    assert _simulator_trace("python", seed) == _simulator_trace("numpy", seed)


@requires_numpy
def test_po_snapshot_matches_across_modes():
    xag = random_xag(random.Random(7), num_pis=5, num_gates=30)
    words, mask, _ = equivalence_stimulus(xag.num_pis)
    with kernels.use_backend("numpy"):
        sim = BitSimulator(xag, words, mask)
        snapshot = sim.po_snapshot()
        assert sim.po_matrix() is not None
        assert sim.po_matches(snapshot)
        assert sim.po_matches(sim.po_words())  # list snapshots also accepted
    with kernels.use_backend("python"):
        sim = BitSimulator(xag, words, mask)
        assert sim.po_matrix() is None
        assert sim.po_matches(sim.po_snapshot())


@requires_numpy
@pytest.mark.parametrize("mutate", [False, True])
def test_equivalence_verdict_parity(mutate):
    for seed in range(5):
        xag = random_xag(random.Random(seed), num_pis=6, num_gates=40)
        other = xag.clone()
        if mutate:
            # flip one PO literal: a guaranteed functional difference
            other._pos[0] ^= 1
        verdicts = {}
        for name in ("python", "numpy"):
            with kernels.use_backend(name):
                verdicts[name] = (
                    equivalent(xag, other),
                    equivalent(xag, other, sim_cache=SimulationCache()),
                )
        assert verdicts["python"] == verdicts["numpy"]
        assert verdicts["python"][0] == (not mutate)


# ----------------------------------------------------------------------
# affine classifier parity
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("num_vars", [3, 4, 5, 6])
def test_classifier_parity(num_vars):
    rng = random.Random(400 + num_vars)
    tables = [random_table(num_vars, rng) for _ in range(40)]
    results = {}
    for name in ("python", "numpy"):
        with kernels.use_backend(name):
            classifier = AffineClassifier()
            results[name] = [classifier.classify(table, num_vars)
                             for table in tables]
    for left, right in zip(results["python"], results["numpy"]):
        assert left.representative == right.representative
        assert left.canonical == right.canonical
        assert left.ops == right.ops
        assert left.from_representative.matrix == \
            right.from_representative.matrix
        assert left.from_representative.offset == \
            right.from_representative.offset
        assert left.from_representative.output_linear == \
            right.from_representative.output_linear
        assert left.from_representative.output_const == \
            right.from_representative.output_const
        assert right.verify()


# ----------------------------------------------------------------------
# whole-flow parity on the EPFL control registry
# ----------------------------------------------------------------------
#: (ANDs, multiplicative depth, rounds) of ``optimize`` with
#: ``RewriteParams()`` defaults and ``max_rounds=3``, captured on the
#: python backend.  Both backends must reproduce these exactly.
CONTROL_PINS = {
    "arbiter": (133, 21, 1),
    "alu_ctrl": (30, 5, 2),
    "cavlc": (82, 12, 3),
    "decoder": (92, 3, 1),
    "i2c": (224, 10, 2),
    "int2float": (71, 15, 3),
    "mem_ctrl": (249, 10, 2),
    "priority": (196, 32, 3),
    "router": (61, 6, 2),
    "voter": (57, 5, 1),
}


def _control_triple(name, backend_name):
    case = select_cases(EngineConfig(suites=("epfl",), circuits=[name]))[0]
    with kernels.use_backend(backend_name):
        xag = case.build()
        result = optimize(xag, params=RewriteParams(), max_rounds=3)
        return (result.final.num_ands, multiplicative_depth(result.final),
                result.num_rounds)


@pytest.mark.parametrize("name", sorted(CONTROL_PINS))
def test_control_triples_pinned_python(name):
    assert _control_triple(name, "python") == CONTROL_PINS[name]


@requires_numpy
@pytest.mark.parametrize("name", sorted(CONTROL_PINS))
def test_control_triples_pinned_numpy(name):
    assert _control_triple(name, "numpy") == CONTROL_PINS[name]


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
def test_run_batch_records_resolved_backend():
    config = EngineConfig(circuits=["router"], max_rounds=1,
                          backend="python")
    batch = run_batch(config)
    assert batch.backend == "python"
    assert "[python kernels]" in batch.render()


def test_run_batch_rejects_unknown_backend():
    with pytest.raises(ValueError):
        run_batch(EngineConfig(circuits=["router"], backend="fortran"))


@requires_numpy
def test_run_batch_auto_resolves_and_renders_numpy():
    batch = run_batch(EngineConfig(circuits=["router"], max_rounds=1,
                                   backend="auto"))
    assert batch.backend == "numpy"
    assert "[numpy kernels]" in batch.render()


def test_cli_rejects_unknown_backend_with_exit_2(capsys):
    from repro.engine.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--backend", "fortran", "--circuits", "router"])
    assert excinfo.value.code == 2


def test_cli_json_payload_records_backend(tmp_path):
    import json

    from repro.engine.cli import main

    path = tmp_path / "report.json"
    assert main(["--circuits", "router", "--rounds", "1",
                 "--backend", "python", "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["config"]["backend"] == "python"
