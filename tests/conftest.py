"""Shared fixtures (circuit builders live in :mod:`repro.testing`).

Tests marked ``slow`` (full-scale crypto builds, long convergence runs) are
skipped by default so the tier-1 ``pytest -x -q`` wall time stays bounded;
opt in with ``--runslow`` or ``REPRO_RUN_SLOW=1``.
"""

from __future__ import annotations

import os
import random

import pytest


def pytest_addoption(parser) -> None:
    parser.addoption("--runslow", action="store_true", default=False,
                     help="run tests marked slow (full-scale crypto cases)")


def run_slow_enabled(config) -> bool:
    """True when slow-marked tests should run."""
    return bool(config.getoption("--runslow", default=False)
                or os.environ.get("REPRO_RUN_SLOW") == "1")


def pytest_collection_modifyitems(config, items) -> None:
    if run_slow_enabled(config):
        return
    skip_slow = pytest.mark.skip(
        reason="slow test: pass --runslow or set REPRO_RUN_SLOW=1")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic random generator for reproducible tests."""
    return random.Random(0xDAC19)
