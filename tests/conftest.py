"""Shared fixtures for the test suite (circuit builders live in ``helpers``)."""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    """Deterministic random generator for reproducible tests."""
    return random.Random(0xDAC19)
