"""Tests for the multiplicative-complexity synthesis tiers and bounds."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mc import (
    DecomposeSynthesizer,
    McSynthesizer,
    add_hamming_weight,
    is_provably_optimal,
    lower_bound,
    multiplicative_complexity_upper_bound,
    quadratic_complexity,
    quadratic_form,
    synthesize_quadratic,
    synthesize_symmetric,
)
from repro.tt import bits, random_table
from repro.tt.anf import degree, from_anf
from repro.tt.bits import popcount
from repro.xag.graph import Xag
from repro.xag.simulate import output_truth_tables, simulate_pattern


def majority_table(num_vars: int) -> int:
    table = 0
    for row in range(1 << num_vars):
        if popcount(row) > num_vars // 2:
            table |= 1 << row
    return table


# ----------------------------------------------------------------------
# Dickson tier (degree <= 2: exact)
# ----------------------------------------------------------------------
def test_quadratic_form_extraction():
    majority = 0xE8  # x0x1 ^ x0x2 ^ x1x2
    matrix, linear, constant = quadratic_form(majority, 3)
    assert matrix == [0b110, 0b101, 0b011]
    assert linear == 0
    assert constant == 0


def test_quadratic_form_rejects_higher_degree():
    and3 = 0x80
    assert quadratic_form(and3, 3) is None
    assert synthesize_quadratic(and3, 3) is None
    assert quadratic_complexity(and3, 3) is None


def test_majority_has_multiplicative_complexity_one():
    recipe = synthesize_quadratic(0xE8, 3)
    assert recipe.num_ands == 1
    assert output_truth_tables(recipe)[0] == 0xE8
    assert quadratic_complexity(0xE8, 3) == 1


def test_inner_product_complexities():
    for pairs in (1, 2, 3):
        anf = 0
        for i in range(pairs):
            anf |= 1 << (0b11 << (2 * i))
        table = from_anf(anf, 2 * pairs)
        assert quadratic_complexity(table, 2 * pairs) == pairs
        assert synthesize_quadratic(table, 2 * pairs).num_ands == pairs


def test_mux_function_has_mc_one():
    # mux(s, a, b) = b ^ s(a ^ b), a degree-2 function of 3 variables
    mux = 0
    for row in range(8):
        s, a, b = row & 1, (row >> 1) & 1, (row >> 2) & 1
        if (a if s else b):
            mux |= 1 << row
    assert quadratic_complexity(mux, 3) == 1


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 5), st.randoms(use_true_random=False))
def test_random_quadratic_functions_are_synthesised_optimally(num_vars, rnd):
    """Random degree-<=2 functions: correct and matching the rank/2 bound."""
    # build a random quadratic ANF
    anf = rnd.getrandbits(1 << num_vars)
    filtered = 0
    for monomial in range(1 << num_vars):
        if (anf >> monomial) & 1 and popcount(monomial) <= 2:
            filtered |= 1 << monomial
    table = from_anf(filtered, num_vars)
    recipe = synthesize_quadratic(table, num_vars)
    assert recipe is not None
    assert output_truth_tables(recipe)[0] == table
    assert recipe.num_ands == quadratic_complexity(table, num_vars)
    assert is_provably_optimal(table, num_vars, recipe.num_ands)


# ----------------------------------------------------------------------
# symmetric tier
# ----------------------------------------------------------------------
def test_hamming_weight_counter_counts_ands():
    for num_inputs in (3, 5, 6, 7, 8):
        xag = Xag()
        inputs = xag.create_pis(num_inputs)
        weight_bits = add_hamming_weight(xag, inputs)
        for bit in weight_bits:
            xag.create_po(bit)
        assert xag.num_ands == num_inputs - popcount(num_inputs)
        # functional check on a few patterns
        rng = random.Random(num_inputs)
        for _ in range(10):
            pattern = [rng.randint(0, 1) for _ in range(num_inputs)]
            outputs = simulate_pattern(xag, pattern)
            weight = sum(bit << i for i, bit in enumerate(outputs))
            assert weight == sum(pattern)


def test_symmetric_synthesis_majority5():
    maj5 = majority_table(5)
    recipe = synthesize_symmetric(maj5, 5)
    assert recipe is not None
    assert output_truth_tables(recipe)[0] == maj5


def test_symmetric_synthesis_rejects_asymmetric():
    assert synthesize_symmetric(bits.projection(0, 3), 3) is None


# ----------------------------------------------------------------------
# decomposition tier and the full synthesiser
# ----------------------------------------------------------------------
def test_affine_functions_cost_zero():
    synthesizer = McSynthesizer()
    table = bits.projection(0, 4) ^ bits.projection(3, 4) ^ bits.table_mask(4)
    assert synthesizer.upper_bound(table, 4) == 0
    assert lower_bound(table, 4) == 0


def test_and3_costs_two():
    synthesizer = McSynthesizer()
    assert synthesizer.upper_bound(0x80, 3) == 2
    assert lower_bound(0x80, 3) == 2
    assert synthesizer.optimality_gap(0x80, 3) == 0


def test_and6_costs_five():
    and6 = 1 << 63
    synthesizer = McSynthesizer()
    assert synthesizer.upper_bound(and6, 6) == 5
    assert lower_bound(and6, 6) == 5


@settings(max_examples=30, deadline=None)
@given(st.integers(3, 6), st.randoms(use_true_random=False))
def test_synthesis_is_functionally_correct(num_vars, rnd):
    table = random_table(num_vars, rnd)
    synthesizer = McSynthesizer()
    recipe = synthesizer.synthesize(table, num_vars)
    assert output_truth_tables(recipe)[0] == table
    assert recipe.num_pis == num_vars
    assert recipe.num_ands >= lower_bound(table, num_vars)


def test_degree_bound_is_respected():
    rng = random.Random(9)
    for _ in range(15):
        num_vars = rng.randint(3, 6)
        table = random_table(num_vars, rng)
        bound = lower_bound(table, num_vars)
        assert bound >= max(0, degree(table, num_vars) - 1) or \
            quadratic_complexity(table, num_vars) is not None


def test_decomposer_tier_flags():
    """Disabling exact tiers can only make results worse (never wrong)."""
    full = DecomposeSynthesizer()
    shannon_only = DecomposeSynthesizer(use_dickson=False, use_symmetric=False)
    rng = random.Random(10)
    for _ in range(10):
        table = random_table(4, rng)
        best = full.synthesize(table, 4)
        worse = shannon_only.synthesize(table, 4)
        assert output_truth_tables(best)[0] == table
        assert output_truth_tables(worse)[0] == table
        assert best.num_ands <= worse.num_ands


def test_synthesizer_memoisation_returns_consistent_results():
    synthesizer = McSynthesizer()
    first = synthesizer.upper_bound(0xCA53, 4)
    second = synthesizer.upper_bound(0xCA53, 4)
    assert first == second
    synthesizer.clear()
    assert synthesizer.upper_bound(0xCA53, 4) == first


def test_module_level_helper():
    assert multiplicative_complexity_upper_bound(0xE8, 3) == 1
