"""Tests for repro.tt.bits."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.tt import bits


def test_num_bits():
    assert bits.num_bits(0) == 1
    assert bits.num_bits(3) == 8
    assert bits.num_bits(6) == 64


def test_num_bits_rejects_negative():
    with pytest.raises(ValueError):
        bits.num_bits(-1)


def test_table_mask():
    assert bits.table_mask(2) == 0xF
    assert bits.table_mask(6) == (1 << 64) - 1


def test_popcount():
    assert bits.popcount(0) == 0
    assert bits.popcount(0b1011) == 3
    assert bits.popcount((1 << 100) - 1) == 100


def test_projection_variable_zero():
    # x0 toggles every row: 0101... pattern
    assert bits.projection(0, 2) == 0b1010
    assert bits.projection(0, 3) == 0b10101010


def test_projection_higher_variables():
    assert bits.projection(1, 2) == 0b1100
    assert bits.projection(2, 3) == 0b11110000


def test_projection_semantics():
    for num_vars in range(1, 6):
        for var in range(num_vars):
            table = bits.projection(var, num_vars)
            for row in range(bits.num_bits(num_vars)):
                assert bits.bit_of(table, row) == (row >> var) & 1


def test_projection_out_of_range():
    with pytest.raises(ValueError):
        bits.projection(3, 3)
    with pytest.raises(ValueError):
        bits.projection(-1, 3)


def test_from_bits_to_bits_roundtrip():
    rng = random.Random(7)
    for num_vars in range(0, 7):
        table = bits.random_table(num_vars, rng)
        unpacked = bits.to_bits(table, num_vars)
        assert len(unpacked) == bits.num_bits(num_vars)
        assert bits.from_bits(unpacked) == table


def test_from_bits_rejects_non_binary():
    with pytest.raises(ValueError):
        bits.from_bits([0, 2, 1])


@given(st.integers(min_value=0, max_value=6), st.randoms(use_true_random=False))
def test_random_table_within_mask(num_vars, rnd):
    table = bits.random_table(num_vars, rnd)
    assert 0 <= table <= bits.table_mask(num_vars)


def test_bit_of():
    assert bits.bit_of(0b0100, 2) == 1
    assert bits.bit_of(0b0100, 1) == 0
