"""Tests for ANF, Walsh spectrum and structural predicates."""

import random

from hypothesis import given, settings, strategies as st

from repro.tt import anf, bits, properties, spectrum
from repro.tt.operations import flip_variable, swap_variables, xor_variable_into, \
    xor_with_variable, negate


def tables(num_vars):
    return st.integers(min_value=0, max_value=bits.table_mask(num_vars))


# ----------------------------------------------------------------------
# ANF
# ----------------------------------------------------------------------
def test_moebius_is_involution():
    rng = random.Random(11)
    for num_vars in range(0, 7):
        table = bits.random_table(num_vars, rng)
        assert anf.from_anf(anf.to_anf(table, num_vars), num_vars) == table


def test_anf_of_simple_functions():
    # AND: x0 x1 -> single quadratic monomial
    assert anf.to_anf(0b1000, 2) == 0b1000
    # XOR: x0 ^ x1 -> two linear monomials
    assert anf.to_anf(0b0110, 2) == 0b0110
    # constant one
    assert anf.to_anf(0b1111, 2) == 0b0001


def test_degree():
    assert anf.degree(0, 3) == 0
    assert anf.degree(bits.table_mask(3), 3) == 0
    assert anf.degree(bits.projection(1, 3), 3) == 1
    assert anf.degree(0xE8, 3) == 2      # majority
    assert anf.degree(0x80, 3) == 3      # x0 x1 x2


def test_anf_monomials():
    monomials = anf.anf_monomials(0xE8, 3)
    assert sorted(monomials) == [(0, 1), (0, 2), (1, 2)]


@settings(max_examples=50, deadline=None)
@given(tables(4), tables(4))
def test_anf_is_linear_over_xor(left, right):
    assert anf.to_anf(left ^ right, 4) == anf.to_anf(left, 4) ^ anf.to_anf(right, 4)


# ----------------------------------------------------------------------
# spectrum
# ----------------------------------------------------------------------
def test_spectrum_of_constant_and_parity():
    assert spectrum.walsh_spectrum(0, 2) == [4, 0, 0, 0]
    parity = 0b0110
    assert spectrum.walsh_spectrum(parity, 2) == [0, 0, 0, 4]


@settings(max_examples=40, deadline=None)
@given(tables(4))
def test_parseval(table):
    values = spectrum.walsh_spectrum(table, 4)
    assert sum(v * v for v in values) == 16 * 16


@settings(max_examples=30, deadline=None)
@given(tables(4), st.integers(0, 3), st.integers(0, 3))
def test_spectrum_signature_invariant_under_affine_ops(table, i, j):
    num_vars = 4
    signature = spectrum.spectrum_signature(table, num_vars)
    assert spectrum.spectrum_signature(flip_variable(table, i, num_vars), num_vars) == signature
    assert spectrum.spectrum_signature(negate(table, num_vars), num_vars) == signature
    assert spectrum.spectrum_signature(xor_with_variable(table, i, num_vars), num_vars) == signature
    if i != j:
        assert spectrum.spectrum_signature(
            swap_variables(table, i, j, num_vars), num_vars) == signature
        assert spectrum.spectrum_signature(
            xor_variable_into(table, i, j, num_vars), num_vars) == signature


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
def test_is_constant():
    assert properties.is_constant(0, 3)
    assert properties.is_constant(bits.table_mask(3), 3)
    assert not properties.is_constant(1, 3)


def test_support_and_depends_on():
    table = bits.projection(2, 4) ^ bits.projection(0, 4)
    assert properties.support(table, 4) == [0, 2]
    assert properties.depends_on(table, 0, 4)
    assert not properties.depends_on(table, 1, 4)


def test_is_affine_and_coefficients():
    table = bits.projection(0, 3) ^ bits.projection(2, 3) ^ bits.table_mask(3)
    assert properties.is_affine(table, 3)
    assert properties.affine_coefficients(table, 3) == (0b101, 1)
    assert not properties.is_affine(0xE8, 3)
    assert properties.affine_coefficients(0xE8, 3) is None


def test_symmetric_detection():
    majority = 0xE8
    assert properties.is_symmetric(majority, 3)
    assert properties.symmetric_values(majority, 3) == [0, 0, 1, 1]
    assert not properties.is_symmetric(bits.projection(0, 3), 3)


def test_symmetric_values_of_parity():
    parity = 0b0110_1001_1001_0110
    assert properties.symmetric_values(parity, 4) == [0, 1, 0, 1, 0]
