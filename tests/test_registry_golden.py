"""Golden pins of the benchmark registry: names, groups and interfaces.

The tuples below are the registry's public contract: registration order is
the engine's report order, names select circuits on the command line, and
PI/PO counts are what warm-start bundles and io round-trips key on.  A
changed or reordered row here is an intentional API change — update the
table *and* whatever depends on it (docs, warm-start bundles) together.

Slow full-scale cases pin only (name, group): their interface is asserted
by the slow-marked build test.
"""

from __future__ import annotations

import pytest

from repro.circuits import BenchmarkRegistry, full_registry
from repro.circuits.benchmark_case import BenchmarkCase

#: (name, group, num_pis, num_pos) for every default-scale case, in
#: registration order.
GOLDEN = [
    ("adder", "arithmetic", 64, 33),
    ("barrel_shifter", "arithmetic", 37, 32),
    ("divisor", "arithmetic", 16, 16),
    ("log2", "arithmetic", 16, 9),
    ("max", "arithmetic", 64, 16),
    ("multiplier", "arithmetic", 16, 16),
    ("sine", "arithmetic", 10, 10),
    ("square_root", "arithmetic", 16, 8),
    ("square", "arithmetic", 8, 16),
    ("arbiter", "control", 32, 17),
    ("alu_ctrl", "control", 7, 26),
    ("cavlc", "control", 10, 11),
    ("decoder", "control", 6, 64),
    ("i2c", "control", 73, 71),
    ("int2float", "control", 11, 8),
    ("mem_ctrl", "control", 75, 76),
    ("priority", "control", 32, 6),
    ("router", "control", 60, 30),
    ("voter", "control", 63, 1),
    ("aes_128", "mpc", 256, 128),
    ("aes_128_expanded", "mpc", 384, 128),
    ("des", "mpc", 128, 64),
    ("des_expanded", "mpc", 160, 64),
    ("md5", "mpc", 512, 128),
    ("sha1", "mpc", 512, 160),
    ("sha256", "mpc", 512, 256),
    ("adder_32", "mpc", 64, 33),
    ("adder_64", "mpc", 128, 65),
    ("multiplier_32", "mpc", 16, 16),
    ("comparator_sleq_32", "mpc", 64, 1),
    ("comparator_slt_32", "mpc", 64, 1),
    ("comparator_uleq_32", "mpc", 64, 1),
    ("comparator_ult_32", "mpc", 64, 1),
    ("full_adder", "arithmetic-sweep", 3, 2),
    ("log2_8", "arithmetic-sweep", 8, 8),
    ("sine_8", "arithmetic-sweep", 8, 8),
    ("rotator_32", "arithmetic-sweep", 37, 32),
    ("max_8_2", "arithmetic-sweep", 16, 8),
    ("max_16_8", "arithmetic-sweep", 128, 16),
    ("adder_8", "arithmetic-sweep", 16, 9),
    ("adder_16", "arithmetic-sweep", 32, 17),
    ("adder_128", "arithmetic-sweep", 256, 129),
    ("subtractor_16", "arithmetic-sweep", 32, 17),
    ("subtractor_32", "arithmetic-sweep", 64, 33),
    ("multiplier_4", "arithmetic-sweep", 8, 8),
    ("square_4", "arithmetic-sweep", 4, 8),
    ("divisor_4", "arithmetic-sweep", 8, 8),
    ("multiplier_16", "arithmetic-sweep", 32, 32),
    ("square_16", "arithmetic-sweep", 16, 32),
    ("divisor_16", "arithmetic-sweep", 32, 32),
    ("comparator_ult_16", "arithmetic-sweep", 32, 1),
    ("comparator_sleq_16", "arithmetic-sweep", 32, 1),
    ("barrel_shifter_16", "arithmetic-sweep", 20, 16),
    ("comparator_ult_64", "arithmetic-sweep", 128, 1),
    ("comparator_sleq_64", "arithmetic-sweep", 128, 1),
    ("barrel_shifter_64", "arithmetic-sweep", 70, 64),
    ("square_root_8", "arithmetic-sweep", 8, 4),
    ("square_root_32", "arithmetic-sweep", 32, 16),
    ("decoder_4", "control-sweep", 4, 16),
    ("priority_16", "control-sweep", 16, 5),
    ("arbiter_8", "control-sweep", 16, 9),
    ("voter_31", "control-sweep", 31, 1),
    ("int2float_16", "control-sweep", 16, 10),
    ("aes_sbox", "crypto-full", 8, 8),
    ("keccak_f1600_r1", "crypto-full", 1600, 1600),
    ("keccak_f1600_r2", "crypto-full", 1600, 1600),
    ("keccak_f1600_r4", "crypto-full", 1600, 1600),
    ("md5_16", "crypto-full", 512, 128),
    ("sha1_16", "crypto-full", 512, 160),
    ("sha256_16", "crypto-full", 512, 256),
]

#: (name, group, num_pis, num_pos) of the slow full-scale crypto cases.
GOLDEN_SLOW = [
    ("keccak_f1600", "crypto-full", 1600, 1600),
    ("aes128_full", "crypto-full", 256, 128),
    ("aes128_expanded_full", "crypto-full", 1536, 128),
    ("des_full", "crypto-full", 128, 64),
    ("md5_full", "crypto-full", 512, 128),
    ("sha1_full", "crypto-full", 512, 160),
    ("sha256_full", "crypto-full", 512, 256),
]


@pytest.fixture(scope="module")
def registry():
    return full_registry()


def test_registry_names_and_order_are_pinned(registry):
    expected = ([name for name, _, _, _ in GOLDEN]
                + [name for name, _, _, _ in GOLDEN_SLOW])
    assert registry.names() == expected


def test_registry_has_grown_past_sixty_cases(registry):
    assert len(registry) >= 60
    assert len(GOLDEN) >= 60


def test_registry_collects_without_building(registry):
    """Metadata-only access must not trigger any (lazy) circuit build."""
    for case in registry:
        assert case.name and case.group
        assert isinstance(case.slow, bool)
    assert registry.groups() == ["arithmetic", "control", "mpc",
                                 "arithmetic-sweep", "control-sweep",
                                 "crypto-full"]


@pytest.mark.parametrize("name,group,num_pis,num_pos", GOLDEN,
                         ids=[row[0] for row in GOLDEN])
def test_case_interface_is_pinned(registry, name, group, num_pis, num_pos):
    case = registry.case(name)
    assert case.group == group
    assert not case.slow
    xag = case.build(full_scale=False)
    assert (xag.num_pis, xag.num_pos) == (num_pis, num_pos)
    assert xag.num_gates > 0


@pytest.mark.slow
@pytest.mark.parametrize("name,group,num_pis,num_pos", GOLDEN_SLOW,
                         ids=[row[0] for row in GOLDEN_SLOW])
def test_slow_case_interface_is_pinned(registry, name, group,
                                       num_pis, num_pos):
    case = registry.case(name)
    assert case.group == group
    assert case.slow
    xag = case.build(full_scale=False)
    assert (xag.num_pis, xag.num_pos) == (num_pis, num_pos)


def test_duplicate_name_raises_descriptive_error(registry):
    first = registry.case("adder")
    clone = BenchmarkCase(name="adder", group="imposters",
                          build_default=first.build_default)
    fresh = BenchmarkRegistry([clone])
    with pytest.raises(ValueError) as excinfo:
        fresh.register(clone)
    message = str(excinfo.value)
    assert "duplicate benchmark name 'adder'" in message
    assert "imposters" in message


def test_unknown_lookups_fail_with_candidates(registry):
    with pytest.raises(KeyError, match="unknown benchmark 'nope'"):
        registry.case("nope")
    with pytest.raises(ValueError, match="unknown circuits"):
        registry.filter(names=["adder", "nope"])


def test_filter_by_group_and_name(registry):
    sweep = registry.filter(groups=["control-sweep"])
    assert [case.name for case in sweep] == \
        ["decoder_4", "priority_16", "arbiter_8", "voter_31", "int2float_16"]
    picked = registry.filter(names=["sha256_16", "adder"])
    assert [case.name for case in picked] == ["sha256_16", "adder"]
    assert "adder" in registry and "nope" not in registry
