"""Multiplicative-depth subsystem: level tracker, balancing, mc-depth flow."""

import random

import pytest

from repro.testing import random_xag
from repro.circuits import arithmetic as A
from repro.circuits import control as C
from repro.rewriting import (CutRewriter, RewriteParams, depth_flow, optimize,
                             paper_flow)
from repro.xag import (LevelTracker, Xag, balance, balance_in_place,
                       equivalent, multiplicative_depth, node_levels)
from repro.xag.equivalence import equivalence_stimulus
from repro.xag.graph import lit_node, lit_not


def and_chain(width=12):
    xag = Xag()
    pis = xag.create_pis(width)
    acc = pis[0]
    for pi in pis[1:]:
        acc = xag.create_and(acc, pi)
    xag.create_po(acc, "all")
    return xag


# ----------------------------------------------------------------------
# maintained AND-levels
# ----------------------------------------------------------------------
def test_level_tracker_matches_fresh_recompute():
    xag = C.int_to_float()
    tracker = LevelTracker(xag)
    fresh = node_levels(xag, and_only=True)
    assert tracker.levels()[:len(fresh)] == fresh
    assert tracker.critical_level() == multiplicative_depth(xag)


def test_level_tracker_total_depth_variant():
    xag = C.int_to_float()
    tracker = LevelTracker(xag, and_only=False)
    fresh = node_levels(xag, and_only=False)
    assert tracker.levels()[:len(fresh)] == fresh


def test_level_tracker_updates_incrementally_on_substitution():
    xag = Xag()
    a, b, c, d = xag.create_pis(4)
    t = xag.create_and(a, b)
    u = xag.create_and(t, c)
    v = xag.create_and(u, d)
    xag.create_po(v)
    tracker = LevelTracker(xag)
    assert tracker.level(lit_node(v)) == 3
    full_before = tracker.full_updates
    # shorten the chain: t := a (levels of u, v drop by one)
    xag.substitute_node(lit_node(t), a)
    fresh = node_levels(xag, and_only=True)
    for node in xag.topological_order():
        assert tracker.levels()[node] == fresh[node]
    assert tracker.critical_level() == 2
    # the update was event-driven, not a full resimulation
    assert tracker.full_updates == full_before
    assert tracker.incremental_updates > 0


def test_level_tracker_appended_suffix_only():
    xag = and_chain(6)
    tracker = LevelTracker(xag)
    tracker.sync()
    full_before = tracker.full_updates
    pis = xag.pi_literals()
    xag.create_po(xag.create_and(pis[0], lit_not(pis[1])), "extra")
    tracker.sync()
    assert tracker.full_updates - full_before == 1


def test_level_tracker_resets_on_rollback():
    xag = and_chain(4)
    tracker = LevelTracker(xag)
    tracker.sync()
    checkpoint = xag.checkpoint()
    pis = xag.pi_literals()
    xag.create_and(xag.create_xor(pis[0], pis[1]), pis[2])
    tracker.sync()
    xag.rollback(checkpoint)
    fresh = node_levels(xag, and_only=True)
    assert tracker.levels()[:len(fresh)] == fresh


# ----------------------------------------------------------------------
# tree balancing
# ----------------------------------------------------------------------
def test_balance_and_chain_to_logarithmic_depth():
    chain = and_chain(16)
    assert multiplicative_depth(chain) == 15
    balanced, stats = balance(chain)
    assert equivalent(chain, balanced)
    assert multiplicative_depth(balanced) == 4
    assert balanced.num_ands == chain.num_ands  # associativity is AND-free
    assert stats.verified is True
    assert stats.trees_rebalanced >= 1


def test_balance_or_chain_through_complemented_edges():
    """OR chains are AND chains with complemented leaf edges."""
    xag = Xag()
    pis = xag.create_pis(8)
    acc = pis[0]
    for pi in pis[1:]:
        acc = xag.create_or(acc, pi)
    xag.create_po(acc, "any")
    assert multiplicative_depth(xag) == 7
    balanced, _ = balance(xag)
    assert equivalent(xag, balanced)
    assert multiplicative_depth(balanced) == 3


def test_balance_weighs_leaf_levels_not_just_counts():
    """A deep leaf must be merged last (Huffman), not mid-tree."""
    xag = Xag()
    pis = xag.create_pis(6)
    deep = xag.create_and(xag.create_and(pis[0], pis[1]), pis[2])  # level 2
    acc = deep
    for pi in pis[3:]:
        acc = xag.create_and(acc, pi)
    xag.create_po(acc)
    assert multiplicative_depth(xag) == 5
    balanced, _ = balance(xag)
    assert equivalent(xag, balanced)
    # optimum: merge the three shallow leaves (depth 2) in parallel with the
    # deep operand's own cone, one final merge on top
    assert multiplicative_depth(balanced) == 3


def test_balance_respects_multi_fanout_boundaries():
    """Interior nodes with fanout > 1 must not be duplicated or rewired."""
    xag = Xag()
    pis = xag.create_pis(5)
    shared = xag.create_and(pis[0], pis[1])
    chain = xag.create_and(xag.create_and(shared, pis[2]), pis[3])
    xag.create_po(chain, "chain")
    xag.create_po(xag.create_xor(shared, pis[4]), "tap")
    ands_before = xag.num_ands
    balanced, _ = balance(xag)
    assert equivalent(xag, balanced)
    assert balanced.num_ands <= ands_before


def test_balance_in_place_notifies_observers():
    """Balancing goes through substitute_node, so packed sim words and the
    maintained levels stay valid on the same network object."""
    xag = and_chain(12)
    words, mask, _ = equivalence_stimulus(xag.num_pis)
    from repro.xag import BitSimulator
    sim = BitSimulator(xag, words, mask)
    po_before = sim.po_words()
    tracker = LevelTracker(xag)
    tracker.sync()
    stats = balance_in_place(xag)
    assert stats.depth_after < stats.depth_before
    assert sim.po_words() == po_before
    fresh = node_levels(xag, and_only=True)
    for node in xag.topological_order():
        assert tracker.levels()[node] == fresh[node]


def test_balance_xor_trees_keep_mult_depth_and_and_count():
    xag = Xag()
    pis = xag.create_pis(10)
    acc = xag.create_and(pis[0], pis[1])
    for pi in pis[2:]:
        acc = xag.create_xor(acc, pi)
    xag.create_po(acc)
    from repro.xag.depth import depth as total_depth
    total_before = total_depth(xag)
    balanced, _ = balance(xag)
    assert equivalent(xag, balanced)
    assert multiplicative_depth(balanced) == multiplicative_depth(xag) == 1
    assert balanced.num_ands == xag.num_ands
    assert total_depth(balanced) < total_before


# ----------------------------------------------------------------------
# mc-depth objective
# ----------------------------------------------------------------------
def test_mc_depth_objective_never_deepens(seeded_circuits=(3, 7, 11)):
    for seed in seeded_circuits:
        xag = random_xag(random.Random(seed), num_pis=6, num_gates=40,
                         and_bias=0.7)
        before = multiplicative_depth(xag)
        result = optimize(xag, params=RewriteParams(objective="mc-depth"))
        assert equivalent(xag, result.final)
        assert multiplicative_depth(result.final) <= before
        assert result.final.num_ands <= xag.num_ands
        for stats in result.rounds:
            assert stats.objective == "mc-depth"
            assert stats.depth_after <= stats.depth_before


def test_mc_depth_rejects_unknown_objective_still():
    with pytest.raises(ValueError, match="unknown cost model"):
        CutRewriter(params=RewriteParams(objective="fast")).rewrite(
            C.int_to_float())


def test_plan_and_level_estimates_upper_bound():
    """The plan's estimated AND-level must never undercut the built logic."""
    from repro.cuts.enumeration import enumerate_cuts
    from repro.rewriting.insert import insert_plan
    from repro.cuts.cache import CutFunctionCache

    xag = C.priority_encoder(8)
    cache = CutFunctionCache()
    cache.bind(xag)
    levels = LevelTracker(xag).levels()
    cuts = enumerate_cuts(xag, cut_size=4, cut_limit=6)
    checked = 0
    for node, node_cuts in cuts.items():
        for cut in node_cuts[:2]:
            if cut.size < 2 or node in cut.leaves:
                continue
            table = cache.cone_function(xag, node, cut.leaves)
            plan = cache.plan_for(table, cut.size)
            leaf_levels = [levels[leaf] for leaf in cut.leaves]
            estimate = CutRewriter._plan_and_level(plan, leaf_levels)
            target = xag.clone()
            lit = insert_plan(target, plan,
                              [leaf << 1 for leaf in cut.leaves])
            built = LevelTracker(target).level(lit_node(lit))
            assert built <= estimate
            checked += 1
    assert checked > 10


# ----------------------------------------------------------------------
# depth flow
# ----------------------------------------------------------------------
def test_depth_flow_reduces_depth_on_chain_circuits():
    chain = and_chain(16)
    result = depth_flow(chain)
    assert equivalent(chain, result.final)
    assert result.final_depth == 4
    assert result.final.num_ands <= chain.num_ands


@pytest.mark.parametrize("builder", [
    lambda: C.int_to_float(),
    lambda: C.priority_encoder(16),
])
def test_depth_flow_modes_reach_identical_pairs(builder):
    """--rebuild replays the in-place trajectory with per-round A/B checks,
    so both modes must land on the same (ANDs, depth) pair."""
    xag = builder()
    flow_in = depth_flow(xag, params=RewriteParams(objective="mc-depth"))
    flow_out = depth_flow(xag, params=RewriteParams(objective="mc-depth",
                                                    in_place=False))
    assert (flow_in.final.num_ands, flow_in.final_depth) == \
        (flow_out.final.num_ands, flow_out.final_depth)
    assert flow_in.final_depth <= flow_in.initial_depth
    assert equivalent(xag, flow_out.final)
    # the rebuild mode actually exercised the out-of-place cross-check
    assert any(stats.ab_checked for stats in flow_out.rounds)
    assert not any(stats.ab_checked for stats in flow_in.rounds)


def test_depth_flow_never_loses_to_mc_on_depth():
    """The flow's whole point: depth no worse than initial, AND count close
    to the pure-mc flow (the bench pins the ≤1 % regression bar)."""
    xag = A.adder(8)
    mc = optimize(xag)
    df = depth_flow(xag)
    assert df.final_depth <= multiplicative_depth(xag)
    assert df.final_depth <= multiplicative_depth(mc.final)
    assert equivalent(xag, df.final)


def test_depth_flow_shares_caches():
    from repro.cuts.cache import CutFunctionCache
    from repro.xag.bitsim import SimulationCache

    cut_cache = CutFunctionCache()
    sim_cache = SimulationCache()
    xag = C.int_to_float()
    first = depth_flow(xag, cut_cache=cut_cache, sim_cache=sim_cache)
    hits_before = cut_cache.plan_hits
    second = depth_flow(xag, cut_cache=cut_cache, sim_cache=sim_cache)
    assert cut_cache.plan_hits > hits_before
    assert (first.final.num_ands, first.final_depth) == \
        (second.final.num_ands, second.final_depth)


def test_paper_flow_supports_mc_depth_objective():
    """optimize/paper_flow accept the objective directly (without balancing)."""
    xag = C.int_to_float()
    result = paper_flow(xag, params=RewriteParams(objective="mc-depth"),
                        max_rounds=2)
    assert equivalent(xag, result.after_convergence)
    assert multiplicative_depth(result.after_convergence) <= \
        multiplicative_depth(xag)
