"""Tests for the incremental bit-parallel simulator and the simulation cache."""

import random

import pytest

from repro.testing import full_adder_naive, random_xag
from repro.xag import Xag, equivalent
from repro.xag.bitsim import BitSimulator, SimulationCache
from repro.xag.equivalence import equivalence_stimulus
from repro.xag.graph import lit_node, lit_not
from repro.xag.simulate import node_values, simulate_words
from repro.tt.bits import projection, table_mask


def _random_stimulus(rng, num_pis, bits=256):
    mask = (1 << bits) - 1
    return [rng.getrandbits(bits) for _ in range(num_pis)], mask


# ----------------------------------------------------------------------
# full-pass equivalence with the reference simulator
# ----------------------------------------------------------------------
def test_bitsim_matches_reference_simulator():
    for seed in range(5):
        rng = random.Random(seed)
        xag = random_xag(rng, num_pis=7, num_gates=45)
        words, mask = _random_stimulus(rng, xag.num_pis)
        sim = BitSimulator(xag, words, mask)
        assert sim.values() == node_values(xag, words, mask)
        assert sim.po_words() == simulate_words(xag, words, mask)


def test_bitsim_exhaustive_stimulus_matches_truth_tables():
    fa = full_adder_naive()
    words = [projection(var, 3) for var in range(3)]
    sim = BitSimulator(fa, words, table_mask(3))
    from repro.xag.simulate import output_truth_tables
    assert sim.po_words() == output_truth_tables(fa)


def test_bitsim_literal_value_handles_complement():
    fa = full_adder_naive()
    words = [projection(var, 3) for var in range(3)]
    sim = BitSimulator(fa, words, table_mask(3))
    lit = fa.po_literal(1)
    assert sim.literal_value(lit_not(lit)) == sim.literal_value(lit) ^ table_mask(3)


# ----------------------------------------------------------------------
# incrementality: appended nodes, rollback, stimulus changes
# ----------------------------------------------------------------------
def test_bitsim_appended_nodes_simulated_incrementally():
    rng = random.Random(7)
    xag = random_xag(rng, num_pis=6, num_gates=20)
    words, mask = _random_stimulus(rng, 6)
    sim = BitSimulator(xag, words, mask)
    sim.sync()
    nodes_before = xag.num_nodes
    full_before = sim.full_updates

    # grow the network: only the new suffix may be simulated
    a, b = xag.pi_literals()[:2]
    fresh = xag.create_and(xag.create_xor(a, b), b)
    xag.create_po(fresh, "extra")
    sim.sync()
    assert sim.full_updates - full_before == xag.num_nodes - nodes_before
    assert sim.values() == node_values(xag, words, mask)


def test_bitsim_rollback_truncates_values():
    rng = random.Random(8)
    xag = random_xag(rng, num_pis=5, num_gates=15)
    words, mask = _random_stimulus(rng, 5)
    sim = BitSimulator(xag, words, mask)
    sim.sync()

    checkpoint = xag.checkpoint()
    a, b = xag.pi_literals()[:2]
    xag.create_and(xag.create_xor(a, b), xag.create_xor(lit_not(a), b))
    sim.sync()
    xag.rollback(checkpoint)
    sim.sync()
    assert len(sim.values()) == xag.num_nodes
    assert sim.values() == node_values(xag, words, mask)


def test_bitsim_rollback_then_regrow_resimulates():
    """A rollback between queries must not leave stale values behind."""
    rng = random.Random(9)
    xag = random_xag(rng, num_pis=5, num_gates=15)
    words, mask = _random_stimulus(rng, 5)
    sim = BitSimulator(xag, words, mask)
    sim.sync()

    checkpoint = xag.checkpoint()
    a, b, c = xag.pi_literals()[:3]
    xag.create_and(xag.create_xor(a, b), c)
    sim.sync()
    # roll back and grow past the old size WITHOUT an intermediate query:
    # the node count alone cannot reveal the rollback
    xag.rollback(checkpoint)
    d = xag.create_xor(xag.create_and(a, c), b)
    xag.create_and(d, xag.create_xor(b, c))
    sim.sync()
    assert sim.values() == node_values(xag, words, mask)


def test_bitsim_update_inputs_matches_full_resimulation():
    for seed in range(4):
        rng = random.Random(100 + seed)
        xag = random_xag(rng, num_pis=8, num_gates=60)
        words, mask = _random_stimulus(rng, 8)
        sim = BitSimulator(xag, words, mask)
        sim.sync()

        changed = list(words)
        changed[rng.randrange(8)] = rng.getrandbits(256)
        changed[rng.randrange(8)] = rng.getrandbits(256)
        sim.update_inputs(changed)
        assert sim.values() == node_values(xag, changed, mask)


def test_bitsim_update_inputs_touches_only_transitive_fanout():
    # x0 feeds one isolated AND; a long XOR chain hangs off the other PIs,
    # so changing x0 must not recompute the chain.
    xag = Xag()
    x0, x1, x2 = xag.create_pis(3)
    isolated = xag.create_and(x0, x1)
    chain = x2
    for _ in range(30):
        chain = xag.create_xor(chain, x1)
        chain = xag.create_and(chain, x2)  # alternate to avoid strashing collapse
    xag.create_po(isolated, "iso")
    xag.create_po(chain, "chain")

    words = [0b1010, 0b1100, 0b1111]
    sim = BitSimulator(xag, words, 0b1111)
    sim.sync()
    recomputed = sim.update_inputs([0b0101, 0b1100, 0b1111])
    assert recomputed == 1           # only the isolated AND is in x0's fanout
    assert sim.values() == node_values(xag, [0b0101, 0b1100, 0b1111], 0b1111)


def test_bitsim_update_inputs_noop_is_free():
    rng = random.Random(11)
    xag = random_xag(rng, num_pis=6, num_gates=25)
    words, mask = _random_stimulus(rng, 6)
    sim = BitSimulator(xag, words, mask)
    sim.sync()
    assert sim.update_inputs(list(words)) == 0
    assert sim.incremental_updates == 0


def test_bitsim_invalidate_recomputes_fanout():
    rng = random.Random(12)
    xag = random_xag(rng, num_pis=6, num_gates=30)
    words, mask = _random_stimulus(rng, 6)
    sim = BitSimulator(xag, words, mask)
    sim.sync()
    # corrupt a gate value behind the simulator's back, then invalidate it
    gate = next(iter(xag.gates()))
    sim.values()[gate] ^= mask
    sim.invalidate([gate])
    assert sim.values() == node_values(xag, words, mask)


def test_bitsim_rejects_wrong_stimulus_width():
    fa = full_adder_naive()
    sim = BitSimulator(fa, [1, 2], 0b11)   # only two words for three PIs
    with pytest.raises(ValueError):
        sim.sync()


# ----------------------------------------------------------------------
# simulation cache
# ----------------------------------------------------------------------
def test_simulation_cache_reuses_simulators():
    rng = random.Random(13)
    xag = random_xag(rng, num_pis=6, num_gates=25)
    words, mask = _random_stimulus(rng, 6)
    cache = SimulationCache()
    first = cache.simulator(xag, words, mask)
    second = cache.simulator(xag, words, mask)
    assert first is second
    assert cache.hits == 1 and cache.misses == 1

    other_words = [w ^ 1 for w in words]
    third = cache.simulator(xag, other_words, mask)
    assert third is first                    # refreshed in place, not rebuilt
    assert cache.stimulus_updates == 1
    assert cache.misses == 1
    assert third.po_words() == simulate_words(xag, other_words, mask)


def test_simulation_cache_evicts_lru():
    rng = random.Random(14)
    cache = SimulationCache(max_entries=2)
    networks = [random_xag(random.Random(20 + i), num_pis=4, num_gates=10)
                for i in range(3)]
    words, mask = _random_stimulus(rng, 4)
    for xag in networks:
        cache.simulator(xag, words, mask)
    assert len(cache) == 2
    cache.simulator(networks[0], words, mask)   # evicted → miss again
    assert cache.misses == 4

    cache.discard(networks[0])
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0


# ----------------------------------------------------------------------
# packed equivalence checking
# ----------------------------------------------------------------------
def test_equivalence_stimulus_is_deterministic():
    words_a, mask_a, exhaustive_a = equivalence_stimulus(20)
    words_b, mask_b, exhaustive_b = equivalence_stimulus(20)
    assert (words_a, mask_a, exhaustive_a) == (words_b, mask_b, exhaustive_b)
    assert not exhaustive_a
    small_words, small_mask, exhaustive = equivalence_stimulus(4)
    assert exhaustive
    assert small_words == [projection(var, 4) for var in range(4)]
    assert small_mask == table_mask(4)


def test_equivalent_detects_mutation_on_wide_networks():
    """The packed random check must catch a single-gate change (>14 PIs)."""
    rng = random.Random(15)
    xag = random_xag(rng, num_pis=16, num_gates=60, num_pos=4)
    mutated = xag.clone()
    gate = next(lit_node(lit) for lit in mutated.po_literals()
                if mutated.is_gate(lit_node(lit)))
    mutated._kind[gate] = 5 - mutated._kind[gate]   # AND (2) <-> XOR (3)
    assert equivalent(xag, xag.clone())
    assert not equivalent(xag, mutated)


def test_equivalent_with_cache_matches_uncached():
    rng = random.Random(16)
    for num_pis in (6, 16):
        xag = random_xag(rng, num_pis=num_pis, num_gates=50, num_pos=3)
        clone = xag.clone()
        cache = SimulationCache()
        assert equivalent(xag, clone, sim_cache=cache)
        assert equivalent(xag, clone, sim_cache=cache)
        # second call: both networks served from the cache
        assert cache.hits >= 2
        assert equivalent(xag, clone) == equivalent(xag, clone, sim_cache=cache)
