"""Tests for the cryptographic benchmark generators (Table 2 circuits)."""

import hashlib
import random

import pytest

from repro.circuits.crypto import aes as aes_module
from repro.circuits.crypto import feistel
from repro.circuits.crypto import hash_common as H
from repro.circuits.crypto.md5 import md5_block
from repro.circuits.crypto.sha1 import sha1_block
from repro.circuits.crypto.sha2 import sha256_block, ROUND_CONSTANTS, INITIAL_STATE
from repro.xag import simulate_pattern


# ----------------------------------------------------------------------
# AES
# ----------------------------------------------------------------------
def test_software_sbox_known_values():
    known = {0x00: 0x63, 0x01: 0x7C, 0x10: 0xCA, 0x53: 0xED, 0xA5: 0x06, 0xFF: 0x16}
    for value, expected in known.items():
        assert aes_module.sbox_value(value) == expected


def test_sbox_is_a_permutation():
    values = {aes_module.sbox_value(x) for x in range(256)}
    assert len(values) == 256


def test_sbox_circuit_matches_software_everywhere():
    circuit = aes_module.aes_sbox_only()
    assert circuit.num_ands <= 40  # composite-field structure, ~36 ANDs
    for value in range(256):
        bits = [(value >> i) & 1 for i in range(8)]
        output = simulate_pattern(circuit, bits)
        assert sum(bit << i for i, bit in enumerate(output)) == aes_module.sbox_value(value)


def test_tower_field_isomorphism_is_multiplicative():
    rng = random.Random(5)
    from repro import gf2

    for _ in range(30):
        a, b = rng.randrange(256), rng.randrange(256)
        mapped_product = gf2.mat_vec(aes_module.AES_TO_TOWER, aes_module.AES_FIELD.multiply(a, b))
        product_of_mapped = aes_module.gf256_mul(gf2.mat_vec(aes_module.AES_TO_TOWER, a),
                                                 gf2.mat_vec(aes_module.AES_TO_TOWER, b))
        assert mapped_product == product_of_mapped


def test_reference_aes_matches_fips197():
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    assert aes_module.aes128_encrypt_reference(plaintext, key).hex() == \
        "69c4e0d86a7b0430d8cdb78070b4c55a"
    with pytest.raises(ValueError):
        aes_module.aes128_encrypt_reference(b"short", key)


def _aes_input_bits(plaintext: bytes, key: bytes):
    return [(plaintext[i // 8] >> (i % 8)) & 1 for i in range(128)] + \
        [(key[i // 8] >> (i % 8)) & 1 for i in range(128)]


@pytest.mark.slow
def test_full_aes_circuit_matches_reference():
    circuit = aes_module.aes128()
    assert circuit.num_pis == 256 and circuit.num_pos == 128
    rng = random.Random(6)
    plaintext = bytes(rng.randrange(256) for _ in range(16))
    key = bytes(rng.randrange(256) for _ in range(16))
    outputs = simulate_pattern(circuit, _aes_input_bits(plaintext, key))
    ciphertext = bytes(sum(outputs[8 * i + j] << j for j in range(8)) for i in range(16))
    assert ciphertext == aes_module.aes128_encrypt_reference(plaintext, key)


def test_aes_interface_sizes_match_table2():
    reduced = aes_module.aes128(num_rounds=1)
    assert reduced.num_pis == 256
    expanded = aes_module.aes128(expanded_key_inputs=True, num_rounds=2)
    assert expanded.num_pis == 128 + 128 * 3
    # the full expanded-key variant has the paper's 1536 inputs
    assert 128 + 128 * 11 == 1536


def test_aes_and_count_per_sbox():
    """AES AND gates come only from the S-boxes (~36 each in the tower form)."""
    one_round = aes_module.aes128(expanded_key_inputs=True, num_rounds=1)
    sboxes = 16
    assert one_round.num_ands == sboxes * aes_module.aes_sbox_only().num_ands


# ----------------------------------------------------------------------
# DES-like Feistel network
# ----------------------------------------------------------------------
def test_feistel_sboxes_are_balanced():
    for table in feistel.SBOXES:
        assert len(table) == 64
        for output_bit in range(4):
            ones = sum((value >> output_bit) & 1 for value in table)
            assert ones == 32  # permutation rows make every output bit balanced


def test_feistel_circuit_matches_reference(rng):
    circuit = feistel.des_like(num_rounds=4)
    for _ in range(5):
        plaintext = rng.getrandbits(64)
        key = rng.getrandbits(64)
        bits = [(plaintext >> i) & 1 for i in range(64)] + [(key >> i) & 1 for i in range(64)]
        outputs = simulate_pattern(circuit, bits)
        value = sum(bit << i for i, bit in enumerate(outputs))
        assert value == feistel.des_like_reference(plaintext, key, num_rounds=4)


def test_feistel_interface_sizes_match_table2():
    assert feistel.des_like(num_rounds=1).num_pis == 128
    assert feistel.des_like(expanded_key_inputs=True, num_rounds=16).num_pis == 832


def test_feistel_expansion_structure():
    expansion = feistel.EXPANSION
    assert len(expansion) == 48
    assert set(expansion) == set(range(32))  # every bit used, edges duplicated
    assert len(feistel.PERMUTATION) == 32 and sorted(feistel.PERMUTATION) == list(range(32))


# ----------------------------------------------------------------------
# hash functions
# ----------------------------------------------------------------------
def _hash_digest(circuit, message, byteorder, num_words):
    if byteorder == "little":
        words = H.pack_block_little_endian(message)
    else:
        words = H.pack_block_big_endian(message)
    outputs = simulate_pattern(circuit, H.block_to_input_bits(words))
    return H.digest_from_outputs(outputs, num_words, byteorder)


def test_md5_circuit_matches_hashlib():
    circuit = md5_block()
    for message in (b"", b"abc", b"The quick brown fox jumps over the lazy dog"):
        assert _hash_digest(circuit, message, "little", 4) == hashlib.md5(message).digest()


def test_sha1_circuit_matches_hashlib():
    circuit = sha1_block()
    for message in (b"", b"abc"):
        assert _hash_digest(circuit, message, "big", 5) == hashlib.sha1(message).digest()


def test_sha256_circuit_matches_hashlib():
    circuit = sha256_block()
    for message in (b"", b"abc", b"hello world"):
        assert _hash_digest(circuit, message, "big", 8) == hashlib.sha256(message).digest()


def test_sha256_constants_match_fips():
    assert ROUND_CONSTANTS[0] == 0x428A2F98
    assert ROUND_CONSTANTS[63] == 0xC67178F2
    assert INITIAL_STATE[0] == 0x6A09E667
    assert INITIAL_STATE[7] == 0x5BE0CD19


def test_hash_circuit_sizes_are_in_paper_ballpark():
    """Initial AND counts should be within ~2x of the Table 2 netlists."""
    assert 15_000 < md5_block().num_ands < 45_000          # paper: 29 084
    assert 20_000 < sha1_block().num_ands < 55_000         # paper: 37 172
    assert 45_000 < sha256_block().num_ands < 130_000      # paper: 89 478


def test_reduced_round_variants_scale():
    assert md5_block(num_steps=8).num_ands < md5_block(num_steps=16).num_ands
    assert sha256_block(num_steps=8).num_pis == 512


def test_packing_helpers_reject_long_messages():
    with pytest.raises(ValueError):
        H.pack_block_little_endian(b"x" * 56)
    with pytest.raises(ValueError):
        H.pack_block_big_endian(b"x" * 60)


def test_compact_style_reduces_and_count():
    naive = md5_block(num_steps=4, style="naive")
    compact = md5_block(num_steps=4, style="compact")
    assert compact.num_ands < naive.num_ands
