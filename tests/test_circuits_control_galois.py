"""Tests for the control-logic generators and the GF(2^k) circuit substrate."""

import random

import pytest

from repro.circuits import control as C
from repro.circuits import galois as G
from repro.circuits import word as W
from repro.xag import Xag, equivalent, simulate_integers, simulate_pattern


# ----------------------------------------------------------------------
# control generators
# ----------------------------------------------------------------------
def test_decoder(rng):
    dec = C.decoder(4)
    assert dec.num_pis == 4 and dec.num_pos == 16
    for value in range(16):
        outputs = simulate_integers(dec, [value], [4], [1] * 16)
        assert outputs == [1 if i == value else 0 for i in range(16)]


def test_priority_encoder(rng):
    encoder = C.priority_encoder(16)
    for _ in range(15):
        requests = rng.randrange(1, 1 << 16)
        index, valid = simulate_integers(encoder, [requests], [16], [4, 1])
        assert valid == 1
        assert index == requests.bit_length() - 1
    index, valid = simulate_integers(encoder, [0], [16], [4, 1])
    assert valid == 0


def test_round_robin_arbiter(rng):
    arbiter = C.round_robin_arbiter(8)
    assert arbiter.num_pis == 16
    for _ in range(20):
        requests = rng.randrange(1 << 8)
        pointer_pos = rng.randrange(8)
        outputs = simulate_integers(arbiter, [requests, 1 << pointer_pos], [8, 8], [1] * 8 + [1])
        grants, busy = outputs[:8], outputs[8]
        assert busy == int(requests != 0)
        assert sum(grants) == (1 if requests else 0)
        if requests:
            granted = grants.index(1)
            assert (requests >> granted) & 1
            # the grant is the first request at or after the pointer, if any
            eligible = [i for i in range(pointer_pos, 8) if (requests >> i) & 1]
            if eligible:
                assert granted == eligible[0]
            else:
                assert granted == next(i for i in range(8) if (requests >> i) & 1)


def test_voter(rng):
    for num_inputs in (5, 9, 15):
        unit = C.voter(num_inputs)
        for _ in range(10):
            votes = rng.randrange(1 << num_inputs)
            (majority,) = simulate_integers(unit, [votes], [num_inputs], [1])
            assert majority == int(bin(votes).count("1") > num_inputs // 2)


def test_int_to_float_monotone_exponent():
    unit = C.int_to_float(11)
    previous_exponent = -1
    for value in (1, 2, 4, 8, 16, 64, 512, 1024, 2047):
        mantissa, exponent, nonzero = simulate_integers(unit, [value], [11], [3, 4, 1])
        assert nonzero == 1
        assert exponent == value.bit_length() - 1
        assert exponent >= previous_exponent
        previous_exponent = exponent
    assert simulate_integers(unit, [0], [11], [3, 4, 1])[2] == 0


def test_random_control_is_reproducible():
    first = C.random_control("demo", 8, 4, 50, seed=42)
    second = C.random_control("demo", 8, 4, 50, seed=42)
    different = C.random_control("demo", 8, 4, 50, seed=43)
    assert equivalent(first, second)
    assert first.num_pis == 8 and first.num_pos == 4
    assert not equivalent(first, different) or first.num_gates != different.num_gates


def test_control_stand_ins_have_paper_interfaces():
    assert C.alu_control_unit().num_pis == 7
    assert C.alu_control_unit().num_pos == 26
    assert C.cavlc_like().num_pis == 10
    assert C.router_like().num_pis == 60
    i2c = C.i2c_like(scale=1)
    assert i2c.num_pis == 147 and i2c.num_pos == 142
    mem = C.memory_controller_like(scale=16)
    assert mem.num_pis >= 8 and mem.num_pos >= 8


def test_control_circuits_are_and_dominated():
    """Control stand-ins must have low XOR content (like the real netlists)."""
    for circuit in (C.cavlc_like(), C.router_like(), C.alu_control_unit()):
        assert circuit.num_ands > circuit.num_xors


# ----------------------------------------------------------------------
# GF(2^k) substrate
# ----------------------------------------------------------------------
def test_binary_field_software_arithmetic():
    field = G.AES_FIELD
    assert field.multiply(0x53, 0xCA) == 0x01  # classical AES example: inverses
    assert field.inverse(0x53) == 0xCA
    assert field.inverse(0) == 0
    assert field.power(0x02, 8) == field.multiply(0x02, field.power(0x02, 7))
    with pytest.raises(ValueError):
        G.BinaryField(4, 0x11B)


def test_gf_multiplier_circuit_matches_software(rng):
    field = G.BinaryField(4, 0b10011)  # GF(16), x^4 + x + 1
    xag = Xag()
    a = W.input_word(xag, 4, "a")
    b = W.input_word(xag, 4, "b")
    W.output_word(xag, G.gf_multiply_circuit(xag, a, b, field), "p")
    assert xag.num_ands == 16
    for _ in range(25):
        x, y = rng.randrange(16), rng.randrange(16)
        (product,) = simulate_integers(xag, [x, y], [4, 4], [4])
        assert product == field.multiply(x, y)


def test_gf_constant_multiplier_and_square_are_linear(rng):
    field = G.BinaryField(4, 0b10011)
    xag = Xag()
    a = W.input_word(xag, 4, "a")
    W.output_word(xag, G.gf_constant_multiply_circuit(xag, a, 0b0110, field), "c")
    W.output_word(xag, G.gf_square_circuit(xag, a, field), "s")
    assert xag.num_ands == 0  # both maps are GF(2)-linear
    for value in range(16):
        const_mul, square = simulate_integers(xag, [value], [4], [4, 4])
        assert const_mul == field.multiply(0b0110, value)
        assert square == field.multiply(value, value)


def test_apply_linear_map_and_inverse():
    matrix = [0b01, 0b11]
    inverse = G.invert_matrix(matrix)
    xag = Xag()
    a = W.input_word(xag, 2, "a")
    W.output_word(xag, G.apply_linear_map(xag, G.apply_linear_map(xag, a, matrix), inverse), "y")
    for value in range(4):
        assert simulate_integers(xag, [value], [2], [2]) == [value]
    with pytest.raises(ValueError):
        G.invert_matrix([1, 1])
